"""A sliding-window ARQ protocol (HDLC/SDLC/LAPB style).

Go-Back-N with window size ``w`` and sequence numbers modulo
``N >= w + 1`` (the paper, Section 1: "sequence numbers are kept modulo
a number that is at least one more than the size of the window").
Acknowledgements are cumulative: an ACK carries the receiver's next
expected sequence number.

Like the protocols it models, this one is correct over FIFO physical
channels once initialized, but it is **crashing**, **message-
independent** and has **bounded headers** (2N of them), so both
impossibility engines defeat it: the crash engine over FIFO channels
(Theorem 7.5) and the bounded-header engine over non-FIFO channels
(Theorem 8.5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

DATA = "DATA"
ACK = "ACK"

#: Finite bound on the pending-acknowledgement queue (see the note in
#: :mod:`repro.protocols.alternating_bit`): overflow equals ack loss.
ACK_QUEUE_LIMIT = 4


@dataclass(frozen=True)
class SwTransmitterCore:
    """Transmitter: pending messages with the window at the front.

    ``pending[:w]`` is the in-flight window; ``base_seq`` is the
    sequence number (mod N) of ``pending[0]``.  ``rotation`` points at
    the window slot to (re)transmit next, so that successive sends walk
    the whole window instead of hammering the base packet -- this is
    what gives a wide window its pipelining advantage.
    """

    base_seq: int = 0
    pending: Tuple[Message, ...] = ()
    rotation: int = 0
    awake: bool = False


@dataclass(frozen=True)
class SwReceiverCore:
    """Receiver: next expected sequence number + queues."""

    expected: int = 0
    inbox: Tuple[Message, ...] = ()
    pending_acks: Tuple[int, ...] = ()
    awake: bool = False


class SwTransmitter(TransmitterLogic):
    """Go-Back-N transmitting-station logic."""

    def __init__(self, window: int = 2, modulus: int = 0):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self.modulus = modulus if modulus else window + 1
        if self.modulus < window + 1:
            raise ValueError("modulus must be at least window + 1")

    def initial_core(self) -> SwTransmitterCore:
        return SwTransmitterCore()

    def on_wake(self, core: SwTransmitterCore) -> SwTransmitterCore:
        return replace(core, awake=True)

    def on_fail(self, core: SwTransmitterCore) -> SwTransmitterCore:
        return replace(core, awake=False)

    def on_send_msg(
        self, core: SwTransmitterCore, message: Message
    ) -> SwTransmitterCore:
        return replace(core, pending=core.pending + (message,))

    def on_packet(
        self, core: SwTransmitterCore, packet: Packet
    ) -> SwTransmitterCore:
        kind, value = packet.header
        if kind != ACK:
            return core
        # Cumulative ACK: ``value`` is the receiver's next expected
        # sequence number; it acknowledges ``distance`` window slots.
        distance = (value - core.base_seq) % self.modulus
        if 0 < distance <= min(self.window, len(core.pending)):
            return replace(
                core,
                base_seq=value,
                pending=core.pending[distance:],
                rotation=0,
            )
        return core

    def enabled_sends(self, core: SwTransmitterCore) -> Iterable[Packet]:
        if not core.awake:
            return
        in_flight = min(self.window, len(core.pending))
        start = core.rotation % in_flight if in_flight else 0
        for step in range(in_flight):
            offset = (start + step) % in_flight
            seq = (core.base_seq + offset) % self.modulus
            yield Packet((DATA, seq), (core.pending[offset],))

    def after_send(
        self, core: SwTransmitterCore, packet: Packet
    ) -> SwTransmitterCore:
        _, seq = packet.header
        offset = (seq - core.base_seq) % self.modulus
        return replace(core, rotation=offset + 1)

    def header_space(self) -> FrozenSet:
        return frozenset((DATA, seq) for seq in range(self.modulus))


class SwReceiver(ReceiverLogic):
    """Go-Back-N receiving-station logic (in-order acceptance)."""

    def __init__(self, window: int = 2, modulus: int = 0):
        self.window = window
        self.modulus = modulus if modulus else window + 1

    def initial_core(self) -> SwReceiverCore:
        return SwReceiverCore()

    def on_wake(self, core: SwReceiverCore) -> SwReceiverCore:
        return replace(core, awake=True)

    def on_fail(self, core: SwReceiverCore) -> SwReceiverCore:
        return replace(core, awake=False)

    def on_packet(
        self, core: SwReceiverCore, packet: Packet
    ) -> SwReceiverCore:
        kind, seq = packet.header
        if kind != DATA:
            return core
        if seq == core.expected:
            (message,) = packet.body
            core = replace(
                core,
                expected=(core.expected + 1) % self.modulus,
                inbox=core.inbox + (message,),
            )
        # Acknowledge with the (possibly advanced) next expected number;
        # one acknowledgement per data packet keeps executions quiescent.
        return replace(
            core,
            pending_acks=(core.pending_acks + (core.expected,))[
                -ACK_QUEUE_LIMIT:
            ],
        )

    def enabled_sends(self, core: SwReceiverCore) -> Iterable[Packet]:
        if core.awake and core.pending_acks:
            yield Packet((ACK, core.pending_acks[0]))

    def after_send(
        self, core: SwReceiverCore, packet: Packet
    ) -> SwReceiverCore:
        return replace(core, pending_acks=core.pending_acks[1:])

    def enabled_deliveries(self, core: SwReceiverCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(
        self, core: SwReceiverCore, message: Message
    ) -> SwReceiverCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        return frozenset((ACK, seq) for seq in range(self.modulus))


def sliding_window_protocol(
    window: int = 2, modulus: int = 0
) -> DataLinkProtocol:
    """A Go-Back-N protocol with the given window and modulus.

    ``modulus`` defaults to ``window + 1`` (the minimum legal value).
    """
    effective_modulus = modulus if modulus else window + 1
    return DataLinkProtocol(
        name=f"sliding-window(w={window},N={effective_modulus})",
        transmitter_factory=lambda: SwTransmitter(window, effective_modulus),
        receiver_factory=lambda: SwReceiver(window, effective_modulus),
        description=(
            "Go-Back-N ARQ with cumulative acknowledgements; correct "
            "over FIFO channels, crashing, bounded headers"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "k_bounded": window,
            "weakly_correct_over": ("fifo",),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )
