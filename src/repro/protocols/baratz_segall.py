"""A Baratz-Segall-style link initialization protocol with non-volatile memory.

Baratz and Segall [BS83] showed that sliding-window protocols can be
combined with a careful link-initialization procedure to survive an
arbitrary number of link failures, *provided* the stations keep a small
amount of non-volatile memory across crashes; our paper proves the
"provided" is essential (Theorem 7.5).  This module implements an
initialization-plus-transfer protocol in that spirit:

* each station holds an **incarnation number** in non-volatile storage
  and bumps it on every crash (BS83 achieve the same disambiguation with
  a single non-volatile bit via a more intricate handshake; we use a
  counter for clarity -- the substitution is immaterial to the theorem
  boundary, which only distinguishes *zero* non-volatile state from
  *some*);
* a session is established by a SYN / SYNACK handshake quoting both
  incarnations; DATA and ACK packets carry the session pair and a
  sequence number, so packets from dead sessions are recognized and
  answered with RESET;
* on a session reset the transmitter **discards in-doubt messages**
  (sent but unacknowledged): they may or may not have been delivered,
  and re-sending them in a new session is exactly what would create the
  duplicate deliveries of Theorem 7.5.

Guarantees (demonstrated by the E5 experiments): (DL4)/(DL5) safety
under arbitrary crash schedules, and delivery of every message submitted
while both stations remain up.  With ``nonvolatile=False`` the same
protocol becomes *crashing* -- and the crash engine defeats it, which is
the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Optional, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

#: Finite bound on the receiver's pending-response queue (see the note
#: in :mod:`repro.protocols.alternating_bit`): overflow equals loss.
RESPONSE_QUEUE_LIMIT = 4

SYN = "SYN"
SYNACK = "SYNACK"
DATA = "DATA"
ACK = "ACK"
RESET = "RESET"


@dataclass(frozen=True)
class BsTransmitterCore:
    """Transmitter state; ``nv`` is the non-volatile incarnation."""

    nv: int = 0
    awake: bool = False
    peer: Optional[int] = None  # receiver incarnation once handshaken
    seq: int = 0  # sequence number of ``current`` in this session
    current: Optional[Message] = None  # in-flight (in-doubt) message
    queue: Tuple[Message, ...] = ()  # not yet exposed to the link


@dataclass(frozen=True)
class BsReceiverCore:
    """Receiver state; ``nv`` is the non-volatile incarnation."""

    nv: int = 0
    awake: bool = False
    tx_epoch: Optional[int] = None  # transmitter incarnation, if known
    expected: int = 0
    inbox: Tuple[Message, ...] = ()
    responses: Tuple[Packet, ...] = ()  # one queued response per packet


def _promote(core: BsTransmitterCore) -> BsTransmitterCore:
    """Move the next queued message into the in-flight slot if possible."""
    if core.peer is not None and core.current is None and core.queue:
        return replace(
            core, current=core.queue[0], queue=core.queue[1:]
        )
    return core


class BsTransmitter(TransmitterLogic):
    """Baratz-Segall-style transmitting-station logic."""

    def __init__(self, nonvolatile: bool = True):
        self.nonvolatile = nonvolatile

    def initial_core(self) -> BsTransmitterCore:
        return BsTransmitterCore()

    def on_crash(self, core: BsTransmitterCore) -> BsTransmitterCore:
        if self.nonvolatile:
            # Everything volatile is lost; the incarnation survives and
            # is bumped so stale packets are recognizably stale.
            return BsTransmitterCore(nv=core.nv + 1)
        return self.initial_core()

    def on_wake(self, core: BsTransmitterCore) -> BsTransmitterCore:
        return replace(core, awake=True)

    def on_fail(self, core: BsTransmitterCore) -> BsTransmitterCore:
        return replace(core, awake=False)

    def on_send_msg(
        self, core: BsTransmitterCore, message: Message
    ) -> BsTransmitterCore:
        return _promote(replace(core, queue=core.queue + (message,)))

    def on_packet(
        self, core: BsTransmitterCore, packet: Packet
    ) -> BsTransmitterCore:
        kind = packet.header[0]
        if kind == SYNACK:
            _, tx_epoch, rx_epoch = packet.header
            if tx_epoch == core.nv and core.peer is None:
                return _promote(replace(core, peer=rx_epoch, seq=0))
        elif kind == ACK:
            _, session, seq = packet.header
            if (
                core.peer is not None
                and session == (core.nv, core.peer)
                and core.current is not None
                and seq == core.seq
            ):
                return _promote(
                    replace(core, current=None, seq=core.seq + 1)
                )
        elif kind == RESET:
            _, rx_epoch = packet.header
            if core.peer is not None and rx_epoch != core.peer:
                # The receiver rebooted: the session is dead.  The
                # in-flight message is in doubt (it may already have been
                # delivered) and is discarded rather than risk duplicate
                # delivery in the next session.
                return _promote(
                    replace(core, peer=None, seq=0, current=None)
                )
        return core

    def enabled_sends(self, core: BsTransmitterCore) -> Iterable[Packet]:
        if not core.awake:
            return
        if core.peer is None:
            if core.current is not None or core.queue:
                yield Packet((SYN, core.nv))
        elif core.current is not None:
            yield Packet(
                (DATA, (core.nv, core.peer), core.seq), (core.current,)
            )

    def after_send(
        self, core: BsTransmitterCore, packet: Packet
    ) -> BsTransmitterCore:
        return core

    def header_space(self) -> Optional[FrozenSet]:
        return None  # incarnations and sequence numbers are unbounded


class BsReceiver(ReceiverLogic):
    """Baratz-Segall-style receiving-station logic."""

    def __init__(self, nonvolatile: bool = True):
        self.nonvolatile = nonvolatile

    def initial_core(self) -> BsReceiverCore:
        return BsReceiverCore()

    def on_crash(self, core: BsReceiverCore) -> BsReceiverCore:
        if self.nonvolatile:
            return BsReceiverCore(nv=core.nv + 1)
        return self.initial_core()

    def on_wake(self, core: BsReceiverCore) -> BsReceiverCore:
        return replace(core, awake=True)

    def on_fail(self, core: BsReceiverCore) -> BsReceiverCore:
        return replace(core, awake=False)

    def _respond(self, core: BsReceiverCore, packet: Packet) -> BsReceiverCore:
        return replace(
            core,
            responses=(core.responses + (packet,))[-RESPONSE_QUEUE_LIMIT:],
        )

    def on_packet(
        self, core: BsReceiverCore, packet: Packet
    ) -> BsReceiverCore:
        kind = packet.header[0]
        if kind == SYN:
            _, tx_epoch = packet.header
            # (Re-)establish the session for this transmitter incarnation.
            core = replace(core, tx_epoch=tx_epoch, expected=0)
            return self._respond(
                core, Packet((SYNACK, tx_epoch, core.nv))
            )
        if kind == DATA:
            _, session, seq = packet.header
            tx_epoch, rx_epoch = session
            if rx_epoch != core.nv or tx_epoch != core.tx_epoch:
                # A packet from a dead session: tell the transmitter.
                return self._respond(core, Packet((RESET, core.nv)))
            if seq == core.expected:
                (message,) = packet.body
                core = replace(
                    core,
                    expected=core.expected + 1,
                    inbox=core.inbox + (message,),
                )
            return self._respond(core, Packet((ACK, session, seq)))
        return core

    def enabled_sends(self, core: BsReceiverCore) -> Iterable[Packet]:
        if core.awake and core.responses:
            yield core.responses[0]

    def after_send(
        self, core: BsReceiverCore, packet: Packet
    ) -> BsReceiverCore:
        return replace(core, responses=core.responses[1:])

    def enabled_deliveries(self, core: BsReceiverCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(
        self, core: BsReceiverCore, message: Message
    ) -> BsReceiverCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> Optional[FrozenSet]:
        return None


def baratz_segall_protocol(nonvolatile: bool = True) -> DataLinkProtocol:
    """The initialization protocol, with or without non-volatile memory.

    ``nonvolatile=True`` (the default) survives host crashes -- and is
    rejected by the crash engine, since it is not *crashing*.
    ``nonvolatile=False`` resets the incarnation too; the protocol then
    satisfies Theorem 7.5's hypotheses and the crash engine defeats it.
    """
    kind = "nv" if nonvolatile else "volatile"
    return DataLinkProtocol(
        name=f"baratz-segall({kind})",
        transmitter_factory=lambda: BsTransmitter(nonvolatile),
        receiver_factory=lambda: BsReceiver(nonvolatile),
        crash_resilient=nonvolatile,
        description=(
            "session handshake with incarnation numbers held in "
            + ("non-volatile" if nonvolatile else "volatile")
            + " storage; in-doubt messages are discarded on session reset"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": False,
            "crashing": not nonvolatile,
            "weakly_correct_over": ("fifo", "nonfifo"),
            "tolerates_crashes": nonvolatile,
            "self_stabilizing": False,
        },
    )
