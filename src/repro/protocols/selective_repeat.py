"""A selective-repeat sliding-window ARQ protocol.

Unlike Go-Back-N (:mod:`repro.protocols.sliding_window`), the receiver
accepts and buffers any packet whose sequence number falls inside its
window, delivering in order once gaps fill; acknowledgements are
per-packet rather than cumulative.  Sequence numbers run modulo
``N >= 2w`` (the classic selective-repeat requirement: the receiver
window must never straddle an ambiguous wrap).

Properties: correct over FIFO physical channels; **crashing**,
**message-independent**, **bounded headers** -- defeated by both
impossibility engines like its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

DATA = "DATA"
ACK = "ACK"

#: Finite bound on the pending-acknowledgement queue (see the note in
#: :mod:`repro.protocols.alternating_bit`): overflow equals ack loss.
ACK_QUEUE_LIMIT = 4


@dataclass(frozen=True)
class SrTransmitterCore:
    """Window slots with per-slot acknowledged flags.

    ``pending`` holds the not-yet-delivered-to-the-wire suffix;
    ``window`` holds (message, acked) pairs currently in flight;
    ``base_seq`` is the sequence number of ``window[0]``.
    """

    base_seq: int = 0
    window: Tuple[Tuple[Message, bool], ...] = ()
    pending: Tuple[Message, ...] = ()
    rotation: int = 0
    awake: bool = False


@dataclass(frozen=True)
class SrReceiverCore:
    """Receive window: buffered out-of-order packets + delivery queue."""

    expected: int = 0
    buffer: Tuple[Tuple[int, Message], ...] = ()  # (offset, message)
    inbox: Tuple[Message, ...] = ()
    pending_acks: Tuple[int, ...] = ()
    awake: bool = False


def _fill_window(core: SrTransmitterCore, window_size: int) -> SrTransmitterCore:
    """Promote pending messages into free window slots."""
    window = core.window
    pending = core.pending
    while len(window) < window_size and pending:
        window = window + ((pending[0], False),)
        pending = pending[1:]
    return replace(core, window=window, pending=pending)


def _slide(core: SrTransmitterCore, modulus: int) -> SrTransmitterCore:
    """Retire the acknowledged prefix of the window."""
    window = core.window
    base_seq = core.base_seq
    while window and window[0][1]:
        window = window[1:]
        base_seq = (base_seq + 1) % modulus
    return replace(core, window=window, base_seq=base_seq, rotation=0)


class SrTransmitter(TransmitterLogic):
    """Selective-repeat transmitting-station logic."""

    def __init__(self, window: int = 2, modulus: int = 0):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window_size = window
        self.modulus = modulus if modulus else 2 * window
        if self.modulus < 2 * window:
            raise ValueError("modulus must be at least 2 * window")

    def initial_core(self) -> SrTransmitterCore:
        return SrTransmitterCore()

    def on_wake(self, core: SrTransmitterCore) -> SrTransmitterCore:
        return replace(core, awake=True)

    def on_fail(self, core: SrTransmitterCore) -> SrTransmitterCore:
        return replace(core, awake=False)

    def on_send_msg(
        self, core: SrTransmitterCore, message: Message
    ) -> SrTransmitterCore:
        return _fill_window(
            replace(core, pending=core.pending + (message,)),
            self.window_size,
        )

    def on_packet(
        self, core: SrTransmitterCore, packet: Packet
    ) -> SrTransmitterCore:
        kind, seq = packet.header
        if kind != ACK:
            return core
        offset = (seq - core.base_seq) % self.modulus
        if offset >= len(core.window):
            return core  # stale or out-of-window acknowledgement
        message, _ = core.window[offset]
        window = (
            core.window[:offset]
            + ((message, True),)
            + core.window[offset + 1 :]
        )
        core = _slide(replace(core, window=window), self.modulus)
        return _fill_window(core, self.window_size)

    def enabled_sends(self, core: SrTransmitterCore) -> Iterable[Packet]:
        if not core.awake:
            return
        unacked = [
            (offset, message)
            for offset, (message, acked) in enumerate(core.window)
            if not acked
        ]
        if not unacked:
            return
        start = core.rotation % len(unacked)
        for step in range(len(unacked)):
            offset, message = unacked[(start + step) % len(unacked)]
            seq = (core.base_seq + offset) % self.modulus
            yield Packet((DATA, seq), (message,))

    def after_send(
        self, core: SrTransmitterCore, packet: Packet
    ) -> SrTransmitterCore:
        # Stored modulo the window size (it only ever indexes into the
        # unacked list) so the state space stays finite.
        return replace(
            core, rotation=(core.rotation + 1) % self.window_size
        )

    def header_space(self) -> FrozenSet:
        return frozenset((DATA, seq) for seq in range(self.modulus))


class SrReceiver(ReceiverLogic):
    """Selective-repeat receiving-station logic."""

    def __init__(self, window: int = 2, modulus: int = 0):
        self.window_size = window
        self.modulus = modulus if modulus else 2 * window

    def initial_core(self) -> SrReceiverCore:
        return SrReceiverCore()

    def on_wake(self, core: SrReceiverCore) -> SrReceiverCore:
        return replace(core, awake=True)

    def on_fail(self, core: SrReceiverCore) -> SrReceiverCore:
        return replace(core, awake=False)

    def _drain(self, core: SrReceiverCore) -> SrReceiverCore:
        """Move the in-order prefix of the buffer into the inbox."""
        buffer = dict(core.buffer)
        inbox = core.inbox
        expected = core.expected
        while 0 in buffer:
            inbox = inbox + (buffer.pop(0),)
            buffer = {offset - 1: m for offset, m in buffer.items()}
            expected = (expected + 1) % self.modulus
        return replace(
            core,
            buffer=tuple(sorted(buffer.items())),
            inbox=inbox,
            expected=expected,
        )

    def on_packet(
        self, core: SrReceiverCore, packet: Packet
    ) -> SrReceiverCore:
        kind, seq = packet.header
        if kind != DATA:
            return core
        offset = (seq - core.expected) % self.modulus
        if offset < self.window_size and offset not in dict(core.buffer):
            (message,) = packet.body
            core = replace(
                core, buffer=tuple(sorted(dict(core.buffer).items() | {(offset, message)}))
            )
            core = self._drain(core)
        # Acknowledge everything inside or below the window, so the
        # transmitter's slot is cleared even for duplicates.
        return replace(
            core,
            pending_acks=(core.pending_acks + (seq,))[-ACK_QUEUE_LIMIT:],
        )

    def enabled_sends(self, core: SrReceiverCore) -> Iterable[Packet]:
        if core.awake and core.pending_acks:
            yield Packet((ACK, core.pending_acks[0]))

    def after_send(
        self, core: SrReceiverCore, packet: Packet
    ) -> SrReceiverCore:
        return replace(core, pending_acks=core.pending_acks[1:])

    def enabled_deliveries(self, core: SrReceiverCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(
        self, core: SrReceiverCore, message: Message
    ) -> SrReceiverCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        return frozenset((ACK, seq) for seq in range(self.modulus))


def selective_repeat_protocol(
    window: int = 2, modulus: int = 0
) -> DataLinkProtocol:
    """A selective-repeat protocol (modulus defaults to ``2 * window``)."""
    effective_modulus = modulus if modulus else 2 * window
    return DataLinkProtocol(
        name=f"selective-repeat(w={window},N={effective_modulus})",
        transmitter_factory=lambda: SrTransmitter(
            window, effective_modulus
        ),
        receiver_factory=lambda: SrReceiver(window, effective_modulus),
        description=(
            "selective-repeat ARQ with per-packet acknowledgements and "
            "receiver-side buffering; correct over FIFO channels, "
            "crashing, bounded headers"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "k_bounded": window,
            "weakly_correct_over": ("fifo",),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )
