"""Concrete data link protocols: victims, positive controls, strawmen."""

from .alternating_bit import alternating_bit_protocol
from .fragmentation import fragmenting_protocol
from .baratz_segall import baratz_segall_protocol
from .naive import (
    PHANTOM_MESSAGE,
    direct_protocol,
    eager_protocol,
    message_peeking_protocol,
    spontaneous_protocol,
)
from .selective_repeat import selective_repeat_protocol
from .sliding_window import sliding_window_protocol
from .stenning import modulo_stenning_protocol, stenning_protocol

__all__ = [
    "PHANTOM_MESSAGE",
    "alternating_bit_protocol",
    "baratz_segall_protocol",
    "direct_protocol",
    "eager_protocol",
    "fragmenting_protocol",
    "message_peeking_protocol",
    "modulo_stenning_protocol",
    "selective_repeat_protocol",
    "sliding_window_protocol",
    "spontaneous_protocol",
    "stenning_protocol",
]
