"""A fragmenting protocol: message length determines packet count.

The paper's Section 9 notes that real protocols may use *simple* content
information -- "the length might determine the number of packets needed
to contain the message" -- and that the proofs extend to this setting:
message-independence becomes relative to the equivalence classing
messages by size, and the arguments go through as long as some class
contains enough different messages.

This protocol realizes that setting.  A message of size ``s`` is
carried by ``n = max(1, ceil(s / chunk))`` fragments: ``n - 1``
body-less CARRIER fragments followed by one FINAL fragment bearing the
(opaque) message token.  Fragments are stop-and-wait ARQ'd with
sequence numbers modulo ``N`` and per-fragment indices, so for
``chunk``-sized messages the protocol is ``ceil(s/chunk)``-bounded --
the repository's only victim with ``k > 1`` delivery paths, which
exercises the multi-packet branches of the bounded-header engine.

Like its peers it is correct over FIFO channels, crashing, and has
bounded headers; both impossibility engines defeat it (use the
engines' ``message_size`` knob to attack a multi-fragment size class).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

CARRIER = "CARRIER"  # a body-less fragment
FINAL = "FINAL"  # the last fragment, carrying the message token
ACK = "FACK"

#: Finite bound on the pending-acknowledgement queue (see the note in
#: :mod:`repro.protocols.alternating_bit`): overflow equals ack loss.
ACK_QUEUE_LIMIT = 4


def fragments_needed(message: Message, chunk: int) -> int:
    """How many fragments a message of this size needs."""
    return max(1, math.ceil(message.size / chunk))


@dataclass(frozen=True)
class FragTransmitterCore:
    """Stop-and-wait on (sequence number, fragment index)."""

    seq: int = 0
    index: int = 0  # next fragment index of the current message
    pending: Tuple[Message, ...] = ()
    awake: bool = False


@dataclass(frozen=True)
class FragReceiverCore:
    """Tracks the fragment index expected within the current message."""

    expected_seq: int = 0
    expected_index: int = 0
    inbox: Tuple[Message, ...] = ()
    pending_acks: Tuple[Tuple[int, int], ...] = ()
    awake: bool = False


class FragTransmitter(TransmitterLogic):
    """Fragmenting transmitting-station logic."""

    def __init__(self, chunk: int = 1, modulus: int = 2, max_fragments: int = 4):
        if chunk < 1 or modulus < 2 or max_fragments < 1:
            raise ValueError("chunk >= 1, modulus >= 2, max_fragments >= 1")
        self.chunk = chunk
        self.modulus = modulus
        self.max_fragments = max_fragments

    def _fragments(self, message: Message) -> int:
        return min(self.max_fragments, fragments_needed(message, self.chunk))

    def initial_core(self) -> FragTransmitterCore:
        return FragTransmitterCore()

    def on_wake(self, core: FragTransmitterCore) -> FragTransmitterCore:
        return replace(core, awake=True)

    def on_fail(self, core: FragTransmitterCore) -> FragTransmitterCore:
        return replace(core, awake=False)

    def on_send_msg(
        self, core: FragTransmitterCore, message: Message
    ) -> FragTransmitterCore:
        return replace(core, pending=core.pending + (message,))

    def on_packet(
        self, core: FragTransmitterCore, packet: Packet
    ) -> FragTransmitterCore:
        kind, seq, index = packet.header
        if kind != ACK or not core.pending:
            return core
        if seq != core.seq or index != core.index:
            return core
        total = self._fragments(core.pending[0])
        if core.index + 1 < total:
            return replace(core, index=core.index + 1)
        # Last fragment acknowledged: next message, next sequence number.
        return replace(
            core,
            seq=(core.seq + 1) % self.modulus,
            index=0,
            pending=core.pending[1:],
        )

    def enabled_sends(self, core: FragTransmitterCore) -> Iterable[Packet]:
        if not (core.awake and core.pending):
            return
        message = core.pending[0]
        total = self._fragments(message)
        if core.index + 1 < total:
            yield Packet((CARRIER, core.seq, core.index))
        else:
            yield Packet((FINAL, core.seq, core.index), (message,))

    def after_send(
        self, core: FragTransmitterCore, packet: Packet
    ) -> FragTransmitterCore:
        return core  # stop-and-wait: retransmit until acknowledged

    def header_space(self) -> FrozenSet:
        return frozenset(
            (kind, seq, index)
            for kind in (CARRIER, FINAL)
            for seq in range(self.modulus)
            for index in range(self.max_fragments)
        )


class FragReceiver(ReceiverLogic):
    """Fragment-reassembling receiving-station logic."""

    def __init__(self, chunk: int = 1, modulus: int = 2, max_fragments: int = 4):
        self.chunk = chunk
        self.modulus = modulus
        self.max_fragments = max_fragments

    def initial_core(self) -> FragReceiverCore:
        return FragReceiverCore()

    def on_wake(self, core: FragReceiverCore) -> FragReceiverCore:
        return replace(core, awake=True)

    def on_fail(self, core: FragReceiverCore) -> FragReceiverCore:
        return replace(core, awake=False)

    def on_packet(
        self, core: FragReceiverCore, packet: Packet
    ) -> FragReceiverCore:
        kind, seq, index = packet.header
        if kind not in (CARRIER, FINAL):
            return core
        if seq == core.expected_seq and index == core.expected_index:
            if kind == FINAL:
                (message,) = packet.body
                core = replace(
                    core,
                    expected_seq=(core.expected_seq + 1) % self.modulus,
                    expected_index=0,
                    inbox=core.inbox + (message,),
                )
            else:
                core = replace(core, expected_index=core.expected_index + 1)
        # One acknowledgement per fragment received (including stale
        # retransmissions, so a lost ack is re-triggered).
        return replace(
            core,
            pending_acks=(core.pending_acks + ((seq, index),))[
                -ACK_QUEUE_LIMIT:
            ],
        )

    def enabled_sends(self, core: FragReceiverCore) -> Iterable[Packet]:
        if core.awake and core.pending_acks:
            seq, index = core.pending_acks[0]
            yield Packet((ACK, seq, index))

    def after_send(
        self, core: FragReceiverCore, packet: Packet
    ) -> FragReceiverCore:
        return replace(core, pending_acks=core.pending_acks[1:])

    def enabled_deliveries(self, core: FragReceiverCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(
        self, core: FragReceiverCore, message: Message
    ) -> FragReceiverCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        return frozenset(
            (ACK, seq, index)
            for seq in range(self.modulus)
            for index in range(self.max_fragments)
        )


def fragmenting_protocol(
    chunk: int = 1, modulus: int = 2, max_fragments: int = 4
) -> DataLinkProtocol:
    """The fragmenting protocol (Section 9 length-classes extension).

    A message of size ``s`` travels as ``min(max_fragments,
    max(1, ceil(s/chunk)))`` fragments.  Bounded headers
    (``3 * modulus * max_fragments`` of them), crashing,
    message-independent w.r.t. the size-class equivalence.
    """
    return DataLinkProtocol(
        name=f"fragmenting(chunk={chunk},N={modulus},F={max_fragments})",
        transmitter_factory=lambda: FragTransmitter(
            chunk, modulus, max_fragments
        ),
        receiver_factory=lambda: FragReceiver(chunk, modulus, max_fragments),
        description=(
            "stop-and-wait fragment ARQ; message length determines the "
            "number of packets (Section 9 extension)"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "k_bounded": max_fragments,
            "weakly_correct_over": ("fifo",),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )
