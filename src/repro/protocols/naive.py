"""Strawman protocols used as negative controls.

These deliberately broken protocols exercise specific failure modes of
the specification checkers and the engines:

* :func:`direct_protocol` -- fire-and-forget, no retransmission: loses
  messages on lossy channels (violates (DL8) there) but is otherwise
  honest.
* :func:`eager_protocol` -- retransmits but the receiver performs **no
  duplicate suppression**: the crash engine's fair extension delivers a
  duplicate, exercising the (DL4)/Lemma 7.1 branch of Theorem 7.5.
* :func:`spontaneous_protocol` -- the receiver can announce a message
  that was never sent (violates (DL5) immediately).
* :func:`message_peeking_protocol` -- branches on message identity (it
  silently drops a designated message), so it is **not**
  message-independent; the independence checker must flag it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

DATA = "DATA"
ACK = "ACK"


# ----------------------------------------------------------------------
# Shared simple cores
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueueCore:
    """A transmitter that simply queues and emits."""

    queue: Tuple[Message, ...] = ()
    awake: bool = False


@dataclass(frozen=True)
class InboxCore:
    """A receiver that simply accumulates and delivers."""

    inbox: Tuple[Message, ...] = ()
    pending_acks: int = 0
    awake: bool = False


class _WakeMixin:
    def on_wake(self, core):
        return replace(core, awake=True)

    def on_fail(self, core):
        return replace(core, awake=False)


# ----------------------------------------------------------------------
# direct: fire and forget
# ----------------------------------------------------------------------


class DirectTransmitter(_WakeMixin, TransmitterLogic):
    """Sends each message exactly once, never retransmits."""

    def initial_core(self) -> QueueCore:
        return QueueCore()

    def on_send_msg(self, core: QueueCore, message: Message) -> QueueCore:
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core: QueueCore, packet: Packet) -> QueueCore:
        return core

    def enabled_sends(self, core: QueueCore) -> Iterable[Packet]:
        if core.awake and core.queue:
            yield Packet(DATA, (core.queue[0],))

    def after_send(self, core: QueueCore, packet: Packet) -> QueueCore:
        return replace(core, queue=core.queue[1:])

    def header_space(self) -> FrozenSet:
        return frozenset({DATA})


class DirectReceiver(_WakeMixin, ReceiverLogic):
    """Delivers every data packet as it arrives."""

    def initial_core(self) -> InboxCore:
        return InboxCore()

    def on_packet(self, core: InboxCore, packet: Packet) -> InboxCore:
        if packet.header == DATA:
            (message,) = packet.body
            return replace(core, inbox=core.inbox + (message,))
        return core

    def enabled_sends(self, core: InboxCore) -> Iterable[Packet]:
        return ()

    def after_send(self, core: InboxCore, packet: Packet) -> InboxCore:
        return core

    def enabled_deliveries(self, core: InboxCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(self, core: InboxCore, message: Message) -> InboxCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        # This receiver never sends a packet, so its header space is
        # honestly empty (an empty ``enabled_sends`` with a non-empty
        # declared space would read as a dead send_pkt family).
        return frozenset()


def direct_protocol() -> DataLinkProtocol:
    """Fire-and-forget: honest but lossy (no retransmission)."""
    return DataLinkProtocol(
        name="naive-direct",
        transmitter_factory=DirectTransmitter,
        receiver_factory=DirectReceiver,
        description="sends once, delivers everything; loses on lossy links",
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "weakly_correct_over": (),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )


# ----------------------------------------------------------------------
# eager: retransmits, receiver does not deduplicate
# ----------------------------------------------------------------------


class EagerTransmitter(_WakeMixin, TransmitterLogic):
    """Retransmits the head message until an ACK arrives."""

    def initial_core(self) -> QueueCore:
        return QueueCore()

    def on_send_msg(self, core: QueueCore, message: Message) -> QueueCore:
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core: QueueCore, packet: Packet) -> QueueCore:
        if packet.header == ACK and core.queue:
            return replace(core, queue=core.queue[1:])
        return core

    def enabled_sends(self, core: QueueCore) -> Iterable[Packet]:
        if core.awake and core.queue:
            yield Packet(DATA, (core.queue[0],))

    def after_send(self, core: QueueCore, packet: Packet) -> QueueCore:
        return core

    def header_space(self) -> FrozenSet:
        return frozenset({DATA})


class EagerReceiver(_WakeMixin, ReceiverLogic):
    """Delivers and acknowledges every data packet: no dedup at all."""

    def initial_core(self) -> InboxCore:
        return InboxCore()

    def on_packet(self, core: InboxCore, packet: Packet) -> InboxCore:
        if packet.header == DATA:
            (message,) = packet.body
            return replace(
                core,
                inbox=core.inbox + (message,),
                pending_acks=core.pending_acks + 1,
            )
        return core

    def enabled_sends(self, core: InboxCore) -> Iterable[Packet]:
        if core.awake and core.pending_acks:
            yield Packet(ACK)

    def after_send(self, core: InboxCore, packet: Packet) -> InboxCore:
        return replace(core, pending_acks=core.pending_acks - 1)

    def enabled_deliveries(self, core: InboxCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(self, core: InboxCore, message: Message) -> InboxCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        return frozenset({ACK})


def eager_protocol() -> DataLinkProtocol:
    """Retransmitting sender + non-deduplicating receiver."""
    return DataLinkProtocol(
        name="naive-eager",
        transmitter_factory=EagerTransmitter,
        receiver_factory=EagerReceiver,
        description=(
            "retransmits until acknowledged; receiver delivers every "
            "copy (duplicates under retransmission)"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "weakly_correct_over": (),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )


# ----------------------------------------------------------------------
# spontaneous: invents deliveries
# ----------------------------------------------------------------------


#: The message the spontaneous receiver invents.
PHANTOM_MESSAGE = Message(-7, "phantom")


class SpontaneousReceiver(DirectReceiver):
    """Announces a phantom message once the link wakes."""

    def initial_core(self) -> InboxCore:
        return InboxCore()

    def on_wake(self, core: InboxCore) -> InboxCore:
        return replace(
            core, awake=True, inbox=core.inbox + (PHANTOM_MESSAGE,)
        )


def spontaneous_protocol() -> DataLinkProtocol:
    """Receiver invents a delivery: violates (DL5) immediately."""
    return DataLinkProtocol(
        name="naive-spontaneous",
        transmitter_factory=DirectTransmitter,
        receiver_factory=SpontaneousReceiver,
        description="receiver announces a message nobody sent",
    )


# ----------------------------------------------------------------------
# message peeking: not message-independent
# ----------------------------------------------------------------------


class PeekingTransmitter(DirectTransmitter):
    """Silently drops every message whose identifier is even.

    Branching on message content makes the protocol message-dependent;
    the independence checker must reject it.
    """

    def on_send_msg(self, core: QueueCore, message: Message) -> QueueCore:
        if message.ident % 2 == 0:
            return core  # peeks at the message: drops "even" payloads
        return replace(core, queue=core.queue + (message,))


def message_peeking_protocol() -> DataLinkProtocol:
    """A message-dependent protocol (drops messages by content)."""
    return DataLinkProtocol(
        name="naive-peeking",
        transmitter_factory=PeekingTransmitter,
        receiver_factory=DirectReceiver,
        description="inspects message contents; not message-independent",
    )
