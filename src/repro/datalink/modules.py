"""The schedule modules ``DL`` and ``WDL`` (paper, Section 4).

``scheds(DL^{t,r})``: if the sequence is well-formed and satisfies
(DL1)-(DL3), then it satisfies (DL4)-(DL8).

``scheds(WDL^{t,r})`` (the weak specification used by both impossibility
results): under the same assumptions, only (DL4), (DL5) and (DL8) are
guaranteed.  ``scheds(DL) <= scheds(WDL)``, so impossibility for ``WDL``
implies impossibility for ``DL``.

The liveness guarantee (DL8) is evaluated with quiescent-trace semantics
(see :mod:`repro.datalink.properties`); pass ``quiescent=False`` for
checking non-quiescent prefixes, where only the safety guarantees apply.
"""

from __future__ import annotations

from functools import partial

from ..ioa.schedule_module import ScheduleModule
from .actions import data_link_signature
from .properties import dl1, dl2, dl3, dl4, dl5, dl6, dl7, dl8, dl_well_formed


def dl_module(t: str, r: str, quiescent: bool = True) -> ScheduleModule:
    """The schedule module ``DL^{t,r}``."""
    return ScheduleModule(
        name=f"DL^{t},{r}",
        signature=data_link_signature(t, r),
        assumptions=[
            partial(dl_well_formed, t=t, r=r),
            partial(dl1, t=t, r=r),
            partial(dl2, t=t, r=r),
            partial(dl3, t=t, r=r),
        ],
        guarantees=[
            partial(dl4, t=t, r=r),
            partial(dl5, t=t, r=r),
            partial(dl6, t=t, r=r),
            partial(dl7, t=t, r=r),
            partial(dl8, t=t, r=r, quiescent=quiescent),
        ],
    )


def wdl_module(t: str, r: str, quiescent: bool = True) -> ScheduleModule:
    """The weak schedule module ``WDL^{t,r}`` (Section 4).

    Adequate for both impossibility proofs: guarantees only (DL4), (DL5)
    and (DL8).
    """
    return ScheduleModule(
        name=f"WDL^{t},{r}",
        signature=data_link_signature(t, r),
        assumptions=[
            partial(dl_well_formed, t=t, r=r),
            partial(dl1, t=t, r=r),
            partial(dl2, t=t, r=r),
            partial(dl3, t=t, r=r),
        ],
        guarantees=[
            partial(dl4, t=t, r=r),
            partial(dl5, t=t, r=r),
            partial(dl8, t=t, r=r, quiescent=quiescent),
        ],
    )
