"""The crashing property (paper, Section 5.3.2), executably.

A transmitting (receiving) automaton is *crashing* when it has a unique
start state ``q0`` and ``(q, crash, q0)`` is a step for every state
``q``: a host crash loses all protocol memory.  A protocol with access
to non-volatile storage (e.g. Baratz-Segall's one bit) is not crashing.

Because the state space is infinite, the checker validates the property
on a corpus of reachable states sampled from live executions, plus the
protocol's declared ``crash_resilient`` flag.  The crash engine
additionally relies on the property at each crash it injects and will
fail loudly if a crash step does not reset the core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..alphabets import MessageFactory
from ..channels.actions import crash
from .protocol import DataLinkProtocol, HostState


@dataclass
class CrashingReport:
    """Result of the empirical crashing check."""

    crashing: bool
    states_checked: int
    detail: str = ""


def check_crashing(
    protocol: DataLinkProtocol,
    message_count: int = 6,
    max_steps: int = 20_000,
) -> CrashingReport:
    """Check that crash steps reset both stations to their start states.

    Samples the host states arising along a live execution over clean
    FIFO channels (including mid-protocol states with messages queued and
    packets outstanding) and applies a crash step to each.
    """
    from ..sim.network import fifo_system  # local import to avoid a cycle

    system = fifo_system(protocol)
    factory = MessageFactory()
    inputs = [system.wake_t(), system.wake_r()] + [
        system.send(m) for m in factory.fresh_many(message_count)
    ]
    run = system.run_fair(
        system.initial_state(), inputs=inputs, max_steps=max_steps
    )

    checked = 0
    for station, automaton, crash_action in (
        ("t", system.transmitter, system.crash_t()),
        ("r", system.receiver, system.crash_r()),
    ):
        initial_core = automaton.logic.initial_core()
        seen: Set[HostState] = set()
        for state in run.states:
            host = system.host_state(state, station)
            if host in seen:
                continue
            seen.add(host)
            crashed = automaton.step(host, crash_action)
            checked += 1
            if crashed.core != initial_core:
                return CrashingReport(
                    False,
                    checked,
                    f"crash at {station} from {host.core!r} leaves "
                    f"{crashed.core!r}, not the start state",
                )
    return CrashingReport(True, checked)
