"""Data link protocols as pairs of I/O automata (paper, Section 5.1).

A data link protocol is a pair ``(A^t, A^r)`` of a *transmitting
automaton* and a *receiving automaton* with the external signatures of
Section 5.1.  This module provides:

* :class:`TransmitterLogic` / :class:`ReceiverLogic` -- the interface a
  concrete protocol implements.  Logic objects are pure: they map
  immutable *core* states to core states.  Messages must be treated as
  opaque tokens (never inspected), which is what makes every protocol
  expressed in this interface message-independent in the paper's sense;
  the checker in :mod:`repro.datalink.message_independence` validates
  this empirically.
* :class:`TransmitterAutomaton` / :class:`ReceiverAutomaton` -- wrappers
  turning logic objects into full input-enabled I/O automata, handling
  the paper's bookkeeping uniformly:

  - **crash steps** apply :meth:`ProtocolLogic.on_crash`, whose default
    returns the initial core -- exactly the paper's *crashing* property
    (Section 5.3.2).  Protocols with non-volatile storage override it.
  - **packet uid stamping**: each ``send_pkt`` output carries a fresh
    ghost uid realizing the paper's (PL2) unique-labels convention.  The
    uid counter is a proof device, *not* protocol memory: it is excluded
    from the crash reset (the paper's labels "do not correspond to any
    bits sent on the transmission medium") and packets are stripped of
    uids before the logic sees them, so no protocol can branch on them.

* :class:`DataLinkProtocol` -- the pair, with factories so that multiple
  independent instances (for replays from the initial state) can be
  built.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Hashable, Iterable, Optional, Tuple

from ..alphabets import Message, Packet
from ..ioa.actions import Action, action_family
from ..ioa.automaton import Automaton
from ..ioa.signature import ActionSignature
from ..channels.actions import (
    CRASH,
    FAIL,
    RECEIVE_PKT,
    SEND_PKT,
    WAKE,
    send_pkt,
)
from .actions import RECEIVE_MSG, SEND_MSG, receive_msg

Core = Any


@dataclass(frozen=True)
class HostState:
    """State of a protocol automaton: protocol core + ghost uid counter."""

    core: Core
    uid_counter: int = 0

    def with_core(self, core: Core) -> "HostState":
        return HostState(core, self.uid_counter)


class ProtocolLogic(ABC):
    """Behavior shared by transmitter and receiver logic.

    All methods are pure functions of immutable core states.  Core states
    must be hashable values built from primitives, tuples, frozensets and
    frozen dataclasses, with messages appearing only as opaque
    :class:`~repro.alphabets.Message` tokens (this enables the generic
    renaming machinery used by the impossibility engines).
    """

    @abstractmethod
    def initial_core(self) -> Core:
        """The core component of the unique start state."""

    # -- channel status notifications (default: ignored) ---------------

    def on_wake(self, core: Core) -> Core:
        return core

    def on_fail(self, core: Core) -> Core:
        return core

    def on_crash(self, core: Core) -> Core:
        """Effect of a host crash on the core.

        The default loses all state (the *crashing* property of Section
        5.3.2).  A protocol with access to non-volatile storage overrides
        this to preserve the non-volatile part.
        """
        return self.initial_core()

    # -- packet I/O -----------------------------------------------------

    @abstractmethod
    def on_packet(self, core: Core, packet: Packet) -> Core:
        """Handle a packet received from the peer (uid already stripped)."""

    @abstractmethod
    def enabled_sends(self, core: Core) -> Iterable[Packet]:
        """Packets (uid-less) whose ``send_pkt`` precondition holds."""

    @abstractmethod
    def after_send(self, core: Core, packet: Packet) -> Core:
        """Effect of sending ``packet`` (uid-less)."""

    # -- metadata ---------------------------------------------------------

    def header_space(self) -> Optional[FrozenSet[Any]]:
        """The set of packet headers this logic may ever use.

        Return a finite frozenset for bounded-header protocols, or
        ``None`` when the header space is unbounded (e.g. Stenning's
        protocol).  Used to compute the paper's ``headers(A, ==)``.
        """
        return None


class TransmitterLogic(ProtocolLogic):
    """Protocol logic for the transmitting station."""

    @abstractmethod
    def on_send_msg(self, core: Core, message: Message) -> Core:
        """Handle a ``send_msg`` request from the environment."""


class ReceiverLogic(ProtocolLogic):
    """Protocol logic for the receiving station."""

    @abstractmethod
    def enabled_deliveries(self, core: Core) -> Iterable[Message]:
        """Messages whose ``receive_msg`` precondition holds."""

    @abstractmethod
    def after_delivery(self, core: Core, message: Message) -> Core:
        """Effect of delivering ``message`` to the environment."""


class _HostAutomaton(Automaton):
    """Common machinery of the transmitter and receiver automata.

    ``ghost_uids=False`` disables the (PL2) uniqueness labels: packets
    are sent with ``uid=None`` and the counter stays at zero.  The
    labels are a proof device for the impossibility constructions; the
    bounded model checker disables them to keep state spaces finite.
    """

    def __init__(
        self,
        t: str,
        r: str,
        logic: ProtocolLogic,
        name: str,
        ghost_uids: bool = True,
    ):
        self.t = t
        self.r = r
        self.logic = logic
        self.name = name
        self.ghost_uids = ghost_uids

    # subclasses set these in __init__:
    _signature: ActionSignature
    _status_direction: Tuple[str, str]  # direction of wake/fail/crash inputs
    _pkt_out_direction: Tuple[str, str]

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> HostState:
        return HostState(self.logic.initial_core(), 0)

    # -- shared transition pieces ---------------------------------------

    def _status_step(self, state: HostState, action: Action) -> Optional[HostState]:
        if action.direction != self._status_direction:
            return None
        if action.name == WAKE:
            return state.with_core(self.logic.on_wake(state.core))
        if action.name == FAIL:
            return state.with_core(self.logic.on_fail(state.core))
        if action.name == CRASH:
            return state.with_core(self.logic.on_crash(state.core))
        return None

    def _send_pkt_step(self, state: HostState, action: Action) -> Optional[HostState]:
        if action.key != (SEND_PKT, self._pkt_out_direction):
            return None
        packet: Packet = action.payload
        expected_uid = state.uid_counter + 1 if self.ghost_uids else None
        if packet.uid != expected_uid:
            return None
        bare = packet.strip_uid()
        if bare not in set(self.logic.enabled_sends(state.core)):
            return None
        return HostState(
            self.logic.after_send(state.core, bare),
            state.uid_counter + (1 if self.ghost_uids else 0),
        )

    def _enabled_pkt_sends(self, state: HostState) -> Iterable[Action]:
        src, dst = self._pkt_out_direction
        uid = state.uid_counter + 1 if self.ghost_uids else None
        for packet in self.logic.enabled_sends(state.core):
            yield send_pkt(src, dst, packet.with_uid(uid))


class TransmitterAutomaton(_HostAutomaton):
    """A transmitting automaton for ``(t, r)`` (paper, Section 5.1)."""

    def __init__(
        self,
        t: str,
        r: str,
        logic: TransmitterLogic,
        name: Optional[str] = None,
        ghost_uids: bool = True,
    ):
        super().__init__(
            t, r, logic, name or f"transmitter[{t}->{r}]", ghost_uids
        )
        self._status_direction = (t, r)
        self._pkt_out_direction = (t, r)
        self._signature = ActionSignature.make(
            inputs=[
                action_family(SEND_MSG, t, r),
                action_family(RECEIVE_PKT, r, t),
                action_family(WAKE, t, r),
                action_family(FAIL, t, r),
                action_family(CRASH, t, r),
            ],
            outputs=[action_family(SEND_PKT, t, r)],
        )

    def transitions(self, state: HostState, action: Action) -> Tuple[HostState, ...]:
        if action.key == (SEND_MSG, (self.t, self.r)):
            return (
                state.with_core(
                    self.logic.on_send_msg(state.core, action.payload)
                ),
            )
        if action.key == (RECEIVE_PKT, (self.r, self.t)):
            return (
                state.with_core(
                    self.logic.on_packet(
                        state.core, action.payload.strip_uid()
                    )
                ),
            )
        status = self._status_step(state, action)
        if status is not None:
            return (status,)
        sent = self._send_pkt_step(state, action)
        if sent is not None:
            return (sent,)
        return ()

    def enabled_local_actions(self, state: HostState) -> Iterable[Action]:
        return self._enabled_pkt_sends(state)

    def task_of(self, action: Action) -> Hashable:
        return (self.name, "transmit")

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, "transmit")]


class ReceiverAutomaton(_HostAutomaton):
    """A receiving automaton for ``(t, r)`` (paper, Section 5.1)."""

    def __init__(
        self,
        t: str,
        r: str,
        logic: ReceiverLogic,
        name: Optional[str] = None,
        ghost_uids: bool = True,
    ):
        super().__init__(
            t, r, logic, name or f"receiver[{t}->{r}]", ghost_uids
        )
        self._status_direction = (r, t)
        self._pkt_out_direction = (r, t)
        self._signature = ActionSignature.make(
            inputs=[
                action_family(RECEIVE_PKT, t, r),
                action_family(WAKE, r, t),
                action_family(FAIL, r, t),
                action_family(CRASH, r, t),
            ],
            outputs=[
                action_family(SEND_PKT, r, t),
                action_family(RECEIVE_MSG, t, r),
            ],
        )

    def transitions(self, state: HostState, action: Action) -> Tuple[HostState, ...]:
        if action.key == (RECEIVE_PKT, (self.t, self.r)):
            return (
                state.with_core(
                    self.logic.on_packet(
                        state.core, action.payload.strip_uid()
                    )
                ),
            )
        if action.key == (RECEIVE_MSG, (self.t, self.r)):
            logic: ReceiverLogic = self.logic
            if action.payload not in set(
                logic.enabled_deliveries(state.core)
            ):
                return ()
            return (
                state.with_core(
                    logic.after_delivery(state.core, action.payload)
                ),
            )
        status = self._status_step(state, action)
        if status is not None:
            return (status,)
        sent = self._send_pkt_step(state, action)
        if sent is not None:
            return (sent,)
        return ()

    def enabled_local_actions(self, state: HostState) -> Iterable[Action]:
        yield from self._enabled_pkt_sends(state)
        logic: ReceiverLogic = self.logic
        for message in logic.enabled_deliveries(state.core):
            yield receive_msg(self.t, self.r, message)

    def task_of(self, action: Action) -> Hashable:
        if action.name == RECEIVE_MSG:
            return (self.name, "deliver")
        return (self.name, "transmit")

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, "deliver"), (self.name, "transmit")]


@dataclass
class DataLinkProtocol:
    """A data link protocol ``A = (A^t, A^r)`` plus metadata.

    ``transmitter_factory``/``receiver_factory`` build fresh logic
    objects, so independent automaton instances can be created for
    replays.  ``crash_resilient`` declares that the protocol's
    ``on_crash`` does *not* reset all state (i.e. the protocol is **not**
    crashing in the paper's sense); the checker in
    :mod:`repro.datalink.crashing` verifies the declaration.

    ``claims`` is an optional plain dict of paper-taxonomy properties
    the author asserts about the protocol (keys such as
    ``message_independent``, ``bounded_headers``, ``crashing``,
    ``k_bounded``, ``weakly_correct_over``, ``tolerates_crashes``).
    It is deliberately untyped here -- :mod:`repro.lint.claims` parses
    and validates it, and the REP304 contradiction gate checks it
    against inferred properties and recorded fuzz evidence.
    """

    name: str
    transmitter_factory: Callable[[], TransmitterLogic]
    receiver_factory: Callable[[], ReceiverLogic]
    crash_resilient: bool = False
    description: str = ""
    claims: Optional[dict] = None

    def build(
        self, t: str = "t", r: str = "r", ghost_uids: bool = True
    ) -> Tuple[TransmitterAutomaton, ReceiverAutomaton]:
        """Fresh transmitter and receiver automata for endpoints (t, r).

        ``ghost_uids=False`` disables (PL2) uniqueness labels (used by
        the bounded model checker to keep state spaces finite).
        """
        return (
            TransmitterAutomaton(
                t, r, self.transmitter_factory(), ghost_uids=ghost_uids
            ),
            ReceiverAutomaton(
                t, r, self.receiver_factory(), ghost_uids=ghost_uids
            ),
        )

    def header_space(self) -> Optional[FrozenSet[Any]]:
        """The union of both stations' header spaces (None if unbounded)."""
        spaces = [
            self.transmitter_factory().header_space(),
            self.receiver_factory().header_space(),
        ]
        if any(space is None for space in spaces):
            return None
        return frozenset().union(*spaces)

    def has_bounded_headers(self) -> bool:
        """True iff ``headers(A, ==)`` is finite (Section 5.3.1)."""
        return self.header_space() is not None
