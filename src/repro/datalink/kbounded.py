"""k-boundedness (paper, Section 8.1), as an executable probe.

A protocol is *k-bounded* when, after any finite schedule with valid
behavior, any fresh message can be transmitted using at most ``k``
``receive_pkt^{t,r}`` events, without re-receiving packets sent earlier.
"Most practical protocols are in fact 1-bounded."

The universal quantifier over schedules is not decidable, so this module
provides a *probe*: it drives the protocol over the permissive non-FIFO
channels through a sequence of single-message deliveries, cleaning the
channels before each (so no earlier packet can be re-received, matching
the definition's condition 2), and records how many data packets the
receiver consumed per delivery.  The bounded-header engine performs the
same probe inside its pumping loop and uses the per-round observation
directly, so its constructions never depend on the probe generalizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..alphabets import MessageFactory
from ..channels.actions import RECEIVE_PKT
from ..ioa.fairness import FairnessTimeout
from .actions import RECEIVE_MSG
from .protocol import DataLinkProtocol


@dataclass
class KBoundReport:
    """Result of a k-boundedness probe.

    ``k`` is the maximum number of ``receive_pkt^{t,r}`` events observed
    in any single-message delivery; ``per_round`` records each round.
    ``delivered`` is False when some round failed to deliver within the
    step budget (the protocol then is not weakly correct to begin with).
    """

    k: int
    per_round: Tuple[int, ...]
    delivered: bool = True
    detail: str = ""


def probe_k_bound(
    protocol: DataLinkProtocol,
    rounds: int = 8,
    max_steps: int = 50_000,
) -> KBoundReport:
    """Measure the per-delivery data-packet count over clean channels."""
    from ..sim.network import permissive_system  # avoid import cycle

    system = permissive_system(protocol)
    factory = MessageFactory()
    state = system.run_inputs(
        system.initial_state(), [system.wake_t(), system.wake_r()]
    ).final_state

    observations: List[int] = []
    for _ in range(rounds):
        state = system.clean_channels(state)
        message = factory.fresh()
        try:
            fragment = system.run_fair(
                state,
                inputs=[system.send(message)],
                max_steps=max_steps,
                stop_when=lambda a: a.key
                == (RECEIVE_MSG, (system.t, system.r))
                and a.payload == message,
            )
        except FairnessTimeout:
            return KBoundReport(
                max(observations, default=0),
                tuple(observations),
                delivered=False,
                detail=f"message {message} not delivered in {max_steps} steps",
            )
        delivered = any(
            a.key == (RECEIVE_MSG, (system.t, system.r))
            and a.payload == message
            for a in fragment.actions
        )
        if not delivered:
            return KBoundReport(
                max(observations, default=0),
                tuple(observations),
                delivered=False,
                detail=f"system quiesced without delivering {message}",
            )
        observations.append(
            sum(
                1
                for a in fragment.actions
                if a.key == (RECEIVE_PKT, (system.t, system.r))
            )
        )
        state = fragment.final_state
        # Drain the system so the next round starts from a quiescent,
        # valid-behavior point.
        fragment = system.run_fair(state, max_steps=max_steps)
        state = fragment.final_state
    return KBoundReport(max(observations), tuple(observations))
