"""Data-link-layer trace properties (DL1)-(DL8) and validity (Sections 4, 8.1).

All predicates operate on finite sequences of data-link-layer actions for
an endpoint pair ``(t, r)`` and return structured
:class:`~repro.ioa.schedule_module.PropertyResult` values.

Finite-trace semantics of the liveness property (DL8): the engines and
harnesses in this repository always evaluate (DL8) on *quiescent* traces
-- finite fair executions, which determine a unique "nothing further
happens" infinite extension.  On such traces (DL8) becomes checkable:
every ``send_msg`` occurring in the unbounded transmitter working
interval must have a matching ``receive_msg`` in the trace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..ioa.actions import Action
from ..ioa.schedule_module import PropertyResult
from ..channels.actions import CRASH, FAIL, WAKE
from ..channels.properties import (
    alternation_well_formed,
    index_in_intervals,
    unbounded_working_interval,
    working_intervals,
)
from .actions import RECEIVE_MSG, SEND_MSG


def dl_well_formed(
    schedule: Sequence[Action], t: str, r: str
) -> PropertyResult:
    """Well-formedness for data-link sequences (Section 4).

    Strict wake/fail alternation starting with wake, per direction, with
    that direction's crash events as delimiters.
    """
    for direction, label in (((t, r), "transmitter"), ((r, t), "receiver")):
        offending = alternation_well_formed(schedule, direction)
        if offending is not None:
            return PropertyResult.violated(
                "DL-well-formed",
                f"{label} event {offending} ({schedule[offending]}) breaks "
                "the strict wake/fail alternation",
            )
    return PropertyResult.ok("DL-well-formed")


def dl1(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL1): unbounded transmitter and receiver working intervals coexist."""
    transmitter = unbounded_working_interval(schedule, (t, r))
    receiver = unbounded_working_interval(schedule, (r, t))
    if (transmitter is None) == (receiver is None):
        return PropertyResult.ok("DL1")
    side = "transmitter" if transmitter is not None else "receiver"
    return PropertyResult.violated(
        "DL1",
        f"only the {side} side has an unbounded working interval",
    )


def dl2(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL2): every send_msg occurs in a transmitter working interval."""
    intervals = working_intervals(schedule, (t, r))
    for index, action in enumerate(schedule):
        if action.key == (SEND_MSG, (t, r)) and not index_in_intervals(
            index, intervals
        ):
            return PropertyResult.violated(
                "DL2",
                f"send_msg at event {index} lies outside every transmitter "
                "working interval",
            )
    return PropertyResult.ok("DL2")


def dl3(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL3): every message is sent at most once."""
    seen = {}
    for index, action in enumerate(schedule):
        if action.key == (SEND_MSG, (t, r)):
            message = action.payload
            if message in seen:
                return PropertyResult.violated(
                    "DL3",
                    f"message {message} sent at events {seen[message]} and "
                    f"{index}",
                )
            seen[message] = index
    return PropertyResult.ok("DL3")


def dl4(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL4): every message is received at most once."""
    seen = {}
    for index, action in enumerate(schedule):
        if action.key == (RECEIVE_MSG, (t, r)):
            message = action.payload
            if message in seen:
                return PropertyResult.violated(
                    "DL4",
                    f"message {message} received at events {seen[message]} "
                    f"and {index}",
                )
            seen[message] = index
    return PropertyResult.ok("DL4")


def dl5(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL5): every receive_msg is preceded by a send_msg of the message."""
    sent = set()
    for index, action in enumerate(schedule):
        if action.key == (SEND_MSG, (t, r)):
            sent.add(action.payload)
        elif action.key == (RECEIVE_MSG, (t, r)):
            if action.payload not in sent:
                return PropertyResult.violated(
                    "DL5",
                    f"message {action.payload} received at event {index} "
                    "without a preceding send_msg",
                )
    return PropertyResult.ok("DL5")


def dl6(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL6), FIFO: delivered messages arrive in the order they were sent."""
    send_order = {}
    for index, action in enumerate(schedule):
        if action.key == (SEND_MSG, (t, r)):
            send_order.setdefault(action.payload, index)
    last_send_index = -1
    last_message = None
    for index, action in enumerate(schedule):
        if action.key == (RECEIVE_MSG, (t, r)):
            message = action.payload
            send_index = send_order.get(message)
            if send_index is None:
                continue  # DL5's concern
            if send_index < last_send_index:
                return PropertyResult.violated(
                    "DL6",
                    f"message {message} (sent at {send_index}) received at "
                    f"event {index} after {last_message} (sent at "
                    f"{last_send_index}): out of FIFO order",
                )
            last_send_index = send_index
            last_message = message
    return PropertyResult.ok("DL6")


def dl7(schedule: Sequence[Action], t: str, r: str) -> PropertyResult:
    """(DL7): no gaps within a single transmitter working interval.

    If ``m`` is sent before ``m'`` in the same working interval and
    ``m'`` is received, then ``m`` must be received too.
    """
    received = {
        action.payload
        for action in schedule
        if action.key == (RECEIVE_MSG, (t, r))
    }
    for start, end in working_intervals(schedule, (t, r)):
        interval_sends: List[Tuple[int, object]] = [
            (index, schedule[index].payload)
            for index in range(start, end)
            if schedule[index].key == (SEND_MSG, (t, r))
        ]
        # Walk backwards: once some later message is received, all
        # earlier ones must be.
        later_received: Optional[Tuple[int, object]] = None
        for index, message in reversed(interval_sends):
            if message in received:
                later_received = (index, message)
            elif later_received is not None:
                return PropertyResult.violated(
                    "DL7",
                    f"message {message} (sent at {index}) was lost while "
                    f"{later_received[1]} (sent at {later_received[0]}, "
                    "same working interval) was delivered",
                )
    return PropertyResult.ok("DL7")


def dl8(
    schedule: Sequence[Action], t: str, r: str, quiescent: bool = True
) -> PropertyResult:
    """(DL8) liveness, evaluated on a quiescent finite trace.

    Every message sent in the unbounded transmitter working interval must
    be received.  With ``quiescent=False`` the check is skipped (a
    non-quiescent finite prefix cannot witness a liveness violation).
    """
    if not quiescent:
        return PropertyResult.ok("DL8")
    interval = unbounded_working_interval(schedule, (t, r))
    if interval is None:
        return PropertyResult.ok("DL8")
    received = {
        action.payload
        for action in schedule
        if action.key == (RECEIVE_MSG, (t, r))
    }
    start, end = interval
    for index in range(start, end):
        action = schedule[index]
        if action.key == (SEND_MSG, (t, r)) and action.payload not in received:
            return PropertyResult.violated(
                "DL8",
                f"message {action.payload} sent at event {index} in the "
                "unbounded transmitter working interval was never received",
            )
    return PropertyResult.ok("DL8")


# ----------------------------------------------------------------------
# Validity (Section 8.1)
# ----------------------------------------------------------------------


def is_valid_sequence(
    schedule: Sequence[Action], t: str, r: str
) -> PropertyResult:
    """Validity of a data-link action sequence (Section 8.1).

    ``beta`` is valid iff (1) it is well-formed, (2) it satisfies (DL1)-
    (DL5) and (DL8), and (3) a wake event, but no fail or crash events,
    occurs in it.  Since there are no fail/crash events, the working
    intervals are unbounded and (DL8) reduces to "every message sent is
    received" (Lemma 8.1) -- evaluated here on the quiescent reading.
    """
    has_wake = False
    for index, action in enumerate(schedule):
        if action.name == WAKE:
            has_wake = True
        elif action.name in (FAIL, CRASH):
            return PropertyResult.violated(
                "valid",
                f"fail/crash event at {index}: valid sequences contain none",
            )
    if not has_wake:
        return PropertyResult.violated("valid", "no wake event occurs")
    for check in (dl_well_formed, dl1, dl2, dl3, dl4, dl5, dl8):
        result = check(schedule, t, r)
        if not result.holds:
            return PropertyResult.violated(
                "valid", f"{result.name} fails: {result.witness}"
            )
    return PropertyResult.ok("valid")
