"""Message-independence (paper, Section 5.3.1), executably.

The paper defines message-independence through an equivalence relation
``==`` on messages, packets, states and actions: all messages are
equivalent, packets/states/actions are equivalent when related by a
message renaming, and the transition relation respects the equivalence
(conditions 4 and 5 of the definition).

Protocols written against the :class:`~repro.datalink.protocol`
interface treat messages as opaque tokens, so the equivalence is
*witnessed by renamings*: ``x == y`` iff ``rename(x, rho) == y`` for a
message renaming ``rho`` (with packet uids ignored).  This module
provides:

* :class:`Renaming` -- an extendable message renaming,
* equivalence checks for actions and host states,
* :func:`headers_of` -- the paper's ``headers(A, ==)`` as the set of
  (header, body-arity) classes,
* :func:`check_message_independence` -- an empirical validator: replay a
  random execution under a renaming and confirm the protocol evolves to
  equivalent states (conditions 4/5 on the sampled executions).  The
  impossibility engines additionally assert equivalence at every replay
  step, so a protocol sneaking message-dependent behavior past this
  checker would be caught during engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple

from ..alphabets import (
    Message,
    MessageFactory,
    Packet,
    messages_in,
    rename_messages,
    strip_uids,
)
from ..ioa.actions import Action
from .protocol import DataLinkProtocol, HostState


class Renaming:
    """A (growable) injective-by-construction message renaming.

    Maps messages of one execution to messages of a reference execution.
    Messages outside the mapping are fixed points.  The same reference
    message may be the image of several messages from *different* stages
    of a construction, which is sound because each stage tracks its own
    live names.
    """

    def __init__(self, mapping: Optional[Dict[Message, Message]] = None):
        self._mapping: Dict[Message, Message] = dict(mapping or {})

    def bind(self, source: Message, target: Message) -> None:
        """Add ``source -> target``; re-binding to a new target is an error."""
        existing = self._mapping.get(source)
        if existing is not None and existing != target:
            raise ValueError(
                f"renaming already maps {source} to {existing}, not {target}"
            )
        self._mapping[source] = target

    def apply(self, value: Any) -> Any:
        return rename_messages(value, self._mapping)

    def as_dict(self) -> Dict[Message, Message]:
        return dict(self._mapping)

    def inverse(self) -> "Renaming":
        """The inverse mapping (valid when the renaming is injective)."""
        inverse: Dict[Message, Message] = {}
        for source, target in self._mapping.items():
            if target in inverse:
                raise ValueError(
                    f"renaming is not injective at {target}; cannot invert"
                )
            inverse[target] = source
        return Renaming(inverse)

    def __len__(self) -> int:
        return len(self._mapping)


def actions_equivalent(
    action: Action, reference: Action, renaming: Renaming
) -> bool:
    """``action == reference`` under ``renaming`` (uid-insensitive).

    Per the paper's condition 1, equivalent actions are identical except
    for their message/packet parameter; parameters must be related by
    the renaming (and, for packets, agree modulo uid).
    """
    if action.key != reference.key:
        return False
    return strip_uids(renaming.apply(action.payload)) == strip_uids(
        reference.payload
    )


def states_equivalent(
    state: HostState, reference: HostState, renaming: Renaming
) -> bool:
    """``state == reference`` under ``renaming``.

    The ghost uid counter is a proof device, not protocol state, so only
    the cores are compared.
    """
    return strip_uids(renaming.apply(state.core)) == strip_uids(
        reference.core
    )


#: Placeholder standing for "any message" in wildcard comparisons.
WILDCARD_MESSAGE = Message(-1, "*")


def wildcard_form(value: Any) -> Any:
    """Canonical form of a value under the full equivalence ``==``.

    Condition 2 of the paper's definition makes all messages pairwise
    equivalent, so two states/actions/packets are equivalent exactly
    when they agree after replacing every message with a fixed
    placeholder (and erasing ghost uids).  This is the equivalence the
    Section 8 construction needs, where the per-packet correspondence
    ``f`` is not a single functional renaming.

    Section 9 extension: messages of different *sizes* may be in
    different classes ("the length might determine the number of packets
    needed"), so the placeholder preserves the size -- two messages are
    equivalent iff they have the same size, which degenerates to full
    equivalence when every message uses the default size 0.
    """
    stripped = strip_uids(value)
    messages = set(messages_in(stripped))
    return rename_messages(
        stripped,
        {m: Message(-1, "*", m.size) for m in messages},
    )


def equivalent(value: Any, other: Any) -> bool:
    """``value == other`` in the paper's sense (messages as wildcards)."""
    return wildcard_form(value) == wildcard_form(other)


def packet_class(packet: Packet) -> Tuple[Any, int]:
    """The equivalence class of a packet: an element of ``headers(A, ==)``."""
    return (wildcard_form(packet.header), len(packet.body))


def headers_of(protocol: DataLinkProtocol) -> Optional[FrozenSet[Tuple[Any, int]]]:
    """``headers(A, ==)``: the packet equivalence classes the protocol uses.

    With opaque message bodies, a packet's class is its (header,
    body-arity) pair.  Body arity is conservatively taken from {0, 1}
    (all protocols in this repository send at most one message per
    packet); ``None`` means the header space is unbounded.
    """
    space = protocol.header_space()
    if space is None:
        return None
    return frozenset(
        (header, arity) for header in space for arity in (0, 1)
    )


@dataclass
class IndependenceReport:
    """Result of the empirical message-independence check."""

    independent: bool
    detail: str = ""


def check_message_independence(
    protocol: DataLinkProtocol,
    message_count: int = 6,
    max_steps: int = 20_000,
) -> IndependenceReport:
    """Empirically validate conditions 4/5 of Section 5.3.1.

    Runs the protocol over clean FIFO channels on ``message_count``
    messages, then re-runs it with every message renamed, and checks that
    the two executions are equivalent step by step: same behavior shape
    and equivalent final host states.  A message-dependent protocol
    (e.g. one that drops a designated message) diverges.
    """
    from ..sim.network import fifo_system  # local import to avoid a cycle

    factory = MessageFactory(label="a")
    first = fifo_system(protocol)
    messages = factory.fresh_many(message_count)
    inputs = [first.wake_t(), first.wake_r()] + [
        first.send(m) for m in messages
    ]
    run_a = first.run_fair(
        first.initial_state(), inputs=inputs, max_steps=max_steps
    )

    # The renamed run uses messages differing in both label and ident
    # (odd offset), so protocols branching on any facet of the content
    # diverge observably.
    renamed_factory = MessageFactory(label="b", start=1001)
    renamed_messages = renamed_factory.fresh_many(message_count)
    renaming = Renaming(
        dict(zip(renamed_messages, messages))
    )  # maps run-B names to run-A names
    second = fifo_system(protocol)
    renamed_inputs = [second.wake_t(), second.wake_r()] + [
        second.send(m) for m in renamed_messages
    ]
    run_b = second.run_fair(
        second.initial_state(), inputs=renamed_inputs, max_steps=max_steps
    )

    behavior_a = first.behavior(run_a)
    behavior_b = second.behavior(run_b)
    if len(behavior_a) != len(behavior_b):
        return IndependenceReport(
            False,
            f"renamed run produced {len(behavior_b)} external events, "
            f"original produced {len(behavior_a)}",
        )
    for index, (b_action, a_action) in enumerate(
        zip(behavior_b, behavior_a)
    ):
        if not actions_equivalent(b_action, a_action, renaming):
            return IndependenceReport(
                False,
                f"external event {index} differs: {b_action} vs {a_action}",
            )
    for station in ("t", "r"):
        state_a = first.host_state(run_a.final_state, station)
        state_b = second.host_state(run_b.final_state, station)
        if not states_equivalent(state_b, state_a, renaming):
            return IndependenceReport(
                False, f"final state at {station} not equivalent"
            )
    return IndependenceReport(True)
