"""Data-link-layer action constructors and signature (paper, Section 4).

The data link layer for ``(t, r)`` shares its ``wake``/``fail``/``crash``
actions with the two underlying physical channels: ``crash^{t,r}`` is the
transmitting station's crash, ``crash^{r,t}`` the receiving station's.
"""

from __future__ import annotations

from ..alphabets import Message
from ..ioa.actions import Action, action_family, directed
from ..ioa.signature import ActionSignature
from ..channels.actions import CRASH, FAIL, WAKE, crash, fail, wake

SEND_MSG = "send_msg"
RECEIVE_MSG = "receive_msg"


def send_msg(t: str, r: str, message: Message) -> Action:
    """``send_msg^{t,r}(m)``: the environment submits ``m`` at station t."""
    return directed(SEND_MSG, t, r, message)


def receive_msg(t: str, r: str, message: Message) -> Action:
    """``receive_msg^{t,r}(m)``: the link delivers ``m`` at station r."""
    return directed(RECEIVE_MSG, t, r, message)


def data_link_signature(t: str, r: str) -> ActionSignature:
    """``sig(DL^{t,r})``: the external signature of the data link layer."""
    return ActionSignature.make(
        inputs=[
            action_family(SEND_MSG, t, r),
            action_family(WAKE, t, r),
            action_family(FAIL, t, r),
            action_family(CRASH, t, r),
            action_family(WAKE, r, t),
            action_family(FAIL, r, t),
            action_family(CRASH, r, t),
        ],
        outputs=[action_family(RECEIVE_MSG, t, r)],
    )


def is_send_msg(action: Action, t: str, r: str) -> bool:
    return action.key == (SEND_MSG, (t, r))


def is_receive_msg(action: Action, t: str, r: str) -> bool:
    return action.key == (RECEIVE_MSG, (t, r))


__all__ = [
    "CRASH",
    "FAIL",
    "RECEIVE_MSG",
    "SEND_MSG",
    "WAKE",
    "crash",
    "data_link_signature",
    "fail",
    "is_receive_msg",
    "is_send_msg",
    "receive_msg",
    "send_msg",
    "wake",
]
