"""Randomized correctness harness for data link protocols (Section 5.2).

The paper's correctness notion quantifies over *all* physical channels;
that is not decidable, but the permissive channels are universal
(Lemma 6.2: every sensible failure-free physical-layer schedule is a
behavior of ``C-bar``), so checking a protocol against many seeded
delivery sets covers the space of channel behaviors up to the horizon.

The harness runs a protocol over batches of seeded channels and fault
scripts and checks every resulting fair behavior against ``DL`` or
``WDL``.  A single failing behavior refutes correctness; passing runs
are evidence (not proof) of it -- the repository's positive controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..ioa.actions import Action
from ..ioa.schedule_module import ModuleVerdict
from ..channels.scripted import lossy_fifo_channel, reordering_channel
from ..sim.faults import FaultPlan, generate_script
from ..sim.network import DataLinkSystem
from ..sim.runner import run_scenario
from .modules import dl_module, wdl_module
from .protocol import DataLinkProtocol


@dataclass
class CorrectnessFailure:
    """One failing run: the seed, the behavior and the verdict."""

    seed: int
    behavior: Tuple[Action, ...]
    verdict: ModuleVerdict
    quiescent: bool


@dataclass
class CorrectnessReport:
    """Outcome of a correctness batch."""

    protocol_name: str
    module_name: str
    runs: int
    failures: List[CorrectnessFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def check_protocol(
    protocol: DataLinkProtocol,
    channel_builder: Callable[[str, str, int], object],
    seeds: Sequence[int] = tuple(range(10)),
    messages: int = 10,
    weak: bool = False,
    plan: Optional[FaultPlan] = None,
    max_steps: int = 200_000,
) -> CorrectnessReport:
    """Run the protocol over seeded channels and check each behavior.

    ``channel_builder(src, dst, seed)`` constructs one physical channel.
    ``weak`` selects the ``WDL`` module instead of ``DL``.  Liveness
    (DL8) is only asserted on quiescent runs; a non-quiescent run is
    checked for safety and recorded as failing if it additionally ran
    out of budget without quiescing.
    """
    module_factory = wdl_module if weak else dl_module
    report = CorrectnessReport(
        protocol.name,
        module_factory("t", "r").name,
        runs=len(seeds),
    )
    for seed in seeds:
        system = DataLinkSystem.build(
            protocol,
            channel_builder("t", "r", seed),
            channel_builder("r", "t", seed + 7919),
        )
        script_plan = plan or FaultPlan(messages=messages, seed=seed)
        script_plan.seed = seed
        script = generate_script(system, script_plan)
        result = run_scenario(
            system, script.actions, seed=seed, max_steps=max_steps
        )
        module = module_factory("t", "r", quiescent=result.quiescent)
        verdict = module.check(result.behavior)
        if not verdict.in_module or not result.quiescent:
            report.failures.append(
                CorrectnessFailure(
                    seed, result.behavior, verdict, result.quiescent
                )
            )
    return report


def check_over_lossy_fifo(
    protocol: DataLinkProtocol,
    loss_rate: float = 0.3,
    seeds: Sequence[int] = tuple(range(10)),
    messages: int = 10,
    weak: bool = False,
    max_steps: int = 200_000,
) -> CorrectnessReport:
    """Correctness over seeded lossy FIFO channels."""
    return check_protocol(
        protocol,
        lambda src, dst, seed: lossy_fifo_channel(
            src, dst, seed=seed, loss_rate=loss_rate
        ),
        seeds=seeds,
        messages=messages,
        weak=weak,
        max_steps=max_steps,
    )


def check_over_reordering(
    protocol: DataLinkProtocol,
    loss_rate: float = 0.2,
    window: int = 4,
    seeds: Sequence[int] = tuple(range(10)),
    messages: int = 10,
    weak: bool = True,
    max_steps: int = 200_000,
) -> CorrectnessReport:
    """Weak correctness over seeded non-FIFO (reordering) channels.

    Protocols that desynchronize over reordering may *livelock* (e.g.
    endless retransmission against a NAK-ing receiver); such runs burn
    the whole ``max_steps`` budget and are reported as non-quiescent
    failures, so pass a smaller budget when probing suspected-broken
    protocols.
    """
    return check_protocol(
        protocol,
        lambda src, dst, seed: reordering_channel(
            src, dst, seed=seed, loss_rate=loss_rate, window=window
        ),
        seeds=seeds,
        messages=messages,
        weak=weak,
        max_steps=max_steps,
    )
