"""Semantic audits: rules that run a constructed target (REP10x).

The model builder explores a bounded state space with the exploration
engine (:func:`repro.ioa.explorer.explore`) and, for data-link
protocols, additionally harvests states from scripted fair executions
over clean FIFO channels (the fair runs reach deep protocol states --
handshakes completed, retransmissions acknowledged -- that a small BFS
budget may not).  The rules then *sweep* the collected per-automaton
state corpus:

* REP103 checks input-enabledness over every (state, input) pair;
* REP104 checks task-partition totality over every enabled local action;
* REP105 flags locally-controlled action families never enabled
  anywhere in the corpus;
* REP106 reports nondeterministic transitions (informational).

For protocol targets the swept inputs are the status notifications
(``wake``/``fail``/``crash``), ``send_msg`` for the probe messages plus
one fresh message, and ``receive_pkt`` for every packet the *peer* was
observed offering to send -- the physical layer only delivers packets
previously sent (PL1), so peer-sent packets are exactly the inputs a
host must tolerate.  Channels are framework code and are not audited.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from ..alphabets import MessageFactory, Packet
from ..channels.actions import SEND_PKT, crash, fail, receive_pkt, wake
from ..channels.permissive import PermissiveFifoChannel
from ..datalink.actions import send_msg
from ..datalink.protocol import DataLinkProtocol
from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State, TransitionError
from ..ioa.explorer import explore
from ..ioa.fairness import FairnessTimeout
from .registry import rule


def class_location(cls: type) -> Tuple[str, int]:
    """Best-effort ``(file, line)`` of a class definition."""
    try:
        file = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
        return file, line
    except (OSError, TypeError):
        return "<unknown>", 0


def callable_location(obj: Callable) -> Tuple[str, int]:
    """Best-effort ``(file, line)`` of any callable (class or function)."""
    if isinstance(obj, type):
        return class_location(obj)
    try:
        file = inspect.getsourcefile(obj) or "<unknown>"
        _, line = inspect.getsourcelines(obj)
        return file, line
    except (OSError, TypeError):
        return "<unknown>", 0


@dataclass
class AutomatonModel:
    """One audited automaton plus its explored state/input corpus."""

    name: str
    automaton: Automaton
    file: str
    line: int
    states: Tuple[State, ...]
    inputs: Tuple[Action, ...]
    #: REP105 exemption: a host whose logic *declares* an empty header
    #: space claims it never sends, so its send_pkt family being dead is
    #: by design (convention also used by the engine-edge tests).
    declares_no_sends: bool = False


@dataclass
class ExploredModel:
    """A lint target's audited automata (hosts for protocols)."""

    target: str
    automata: List[AutomatonModel] = field(default_factory=list)


# ----------------------------------------------------------------------
# Model builders
# ----------------------------------------------------------------------


def _observed_send_payloads(
    automaton: Automaton, states: Iterable[State]
) -> List[Packet]:
    """Packets the automaton was observed offering to ``send_pkt``."""
    payloads: Set[Packet] = set()
    for state in states:
        for action in automaton.enabled_local_actions(state):
            if action.name == SEND_PKT:
                payloads.add(action.payload)
    return sorted(payloads, key=repr)


def build_protocol_model(
    protocol: DataLinkProtocol,
    messages: int = 2,
    max_states: int = 2000,
    max_depth: int = 50,
) -> ExploredModel:
    """Explore a protocol over clean FIFO channels and slice out hosts.

    Ghost uids are disabled so packets and host states stay canonical
    (the bounded-model-check configuration).  The corpus is the union of
    a bounded BFS (engine fast path) and two scripted fair executions --
    a clean delivery run and a crash/fail/recovery run.
    """
    from ..sim.network import RECEIVER, TRANSMITTER, DataLinkSystem

    t, r = "t", "r"
    system = DataLinkSystem.build(
        protocol,
        PermissiveFifoChannel(t, r),
        PermissiveFifoChannel(r, t),
        t,
        r,
        ghost_uids=False,
    )
    factory = MessageFactory(label="lint")
    probes = factory.fresh_many(messages)

    corpus: Set[State] = {system.initial_state()}

    def run_script(start: State, inputs: List[Action]) -> Optional[State]:
        try:
            fragment = system.run_fair(start, inputs=inputs)
        except FairnessTimeout as timeout:
            corpus.update(timeout.fragment.states)
            return None
        except TransitionError:
            return None
        corpus.update(fragment.states)
        return fragment.final_state

    clean_end = run_script(
        system.initial_state(),
        [system.wake_t(), system.wake_r()]
        + [system.send(message) for message in probes],
    )
    if clean_end is not None:
        run_script(
            clean_end,
            [
                system.crash_t(),
                system.crash_r(),
                system.fail_t(),
                system.fail_r(),
                system.wake_t(),
                system.wake_r(),
                system.send(factory.fresh()),
            ],
        )

    offered = (system.wake_t(), system.wake_r()) + tuple(
        system.send(message) for message in probes
    )
    result = explore(
        system.composition,
        environment=lambda _state: offered,
        max_states=max_states,
        max_depth=max_depth,
    )
    corpus.update(result.states)

    t_states = tuple(
        sorted({state[TRANSMITTER] for state in corpus}, key=repr)
    )
    r_states = tuple(sorted({state[RECEIVER] for state in corpus}, key=repr))
    t_packets = _observed_send_payloads(system.transmitter, t_states)
    r_packets = _observed_send_payloads(system.receiver, r_states)

    fresh = factory.fresh()
    t_inputs = (
        [wake(t, r), fail(t, r), crash(t, r)]
        + [send_msg(t, r, message) for message in probes + (fresh,)]
        + [receive_pkt(r, t, packet) for packet in r_packets]
    )
    r_inputs = [wake(r, t), fail(r, t), crash(r, t)] + [
        receive_pkt(t, r, packet) for packet in t_packets
    ]

    def declares_no_sends(logic) -> bool:
        try:
            return logic.header_space() == frozenset()
        except Exception:
            return False

    t_file, t_line = class_location(type(system.transmitter.logic))
    r_file, r_line = class_location(type(system.receiver.logic))
    return ExploredModel(
        target=protocol.name,
        automata=[
            AutomatonModel(
                system.transmitter.name,
                system.transmitter,
                t_file,
                t_line,
                t_states,
                tuple(t_inputs),
                declares_no_sends(system.transmitter.logic),
            ),
            AutomatonModel(
                system.receiver.name,
                system.receiver,
                r_file,
                r_line,
                r_states,
                tuple(r_inputs),
                declares_no_sends(system.receiver.logic),
            ),
        ],
    )


def build_automaton_model(
    automaton: Automaton,
    environment: Optional[Callable[[State], Iterable[Action]]] = None,
    max_states: int = 2000,
    max_depth: int = 50,
) -> ExploredModel:
    """Explore a bare automaton under an optional input environment."""
    offered: List[Action] = []

    def recording_environment(state: State) -> List[Action]:
        actions = list(environment(state)) if environment is not None else []
        offered.extend(actions)
        return actions

    result = explore(
        automaton,
        environment=recording_environment,
        max_states=max_states,
        max_depth=max_depth,
    )
    signature = automaton.signature
    inputs: List[Action] = []
    seen: Set[Action] = set()
    for action in offered:
        if action in seen:
            continue
        seen.add(action)
        if signature.is_input(action):
            inputs.append(action)
    file, line = class_location(type(automaton))
    return ExploredModel(
        target=automaton.name,
        automata=[
            AutomatonModel(
                automaton.name,
                automaton,
                file,
                line,
                tuple(sorted(result.states, key=repr)),
                tuple(inputs),
            )
        ],
    )


# ----------------------------------------------------------------------
# Build-phase rules (REP101/REP102)
# ----------------------------------------------------------------------


@rule(
    "REP101",
    "ill-formed-signature",
    "§2.1",
    "input/output/internal action sets must be pairwise disjoint",
    family="build",
)
def check_signature_disjointness(target, error):
    if error.kind != "disjointness":
        return
    yield {
        "message": f"building the target raised SignatureError: {error}",
        "file": target.file,
        "line": target.line,
    }


@rule(
    "REP102",
    "incompatible-composition",
    "§2.5.1",
    "composed automata must have strongly compatible signatures",
    family="build",
)
def check_composition_compatibility(target, error):
    if error.kind == "disjointness":
        return
    yield {
        "message": f"building the target raised SignatureError: {error}",
        "file": target.file,
        "line": target.line,
    }


# ----------------------------------------------------------------------
# Sweep rules (REP103-REP106)
# ----------------------------------------------------------------------


@rule(
    "REP103",
    "not-input-enabled",
    "§2.2",
    "every input action must be enabled in every reachable state",
    family="semantic",
)
def check_input_enabledness(model):
    for automaton_model in model.automata:
        automaton = automaton_model.automaton
        signature = automaton.signature
        reported: Set[Tuple] = set()
        for action in automaton_model.inputs:
            if not signature.is_input(action):
                continue
            if action.key in reported:
                continue
            for state in automaton_model.states:
                try:
                    post = automaton.transitions(state, action)
                    problem = (
                        None if post else "has no transition"
                    )
                except Exception as exc:
                    problem = f"raised {type(exc).__name__}: {exc}"
                if problem is not None:
                    reported.add(action.key)
                    yield {
                        "message": (
                            f"{automaton_model.name} is not input-enabled: "
                            f"input {action} {problem} in reachable state "
                            f"{state!r} (swept "
                            f"{len(automaton_model.states)} explored states)"
                        ),
                        "file": automaton_model.file,
                        "line": automaton_model.line,
                    }
                    break


@rule(
    "REP104",
    "partial-task-partition",
    "§2.2",
    "part(A) must cover every locally-controlled action",
    family="semantic",
)
def check_task_totality(model):
    for automaton_model in model.automata:
        automaton = automaton_model.automaton
        try:
            task_set = set(automaton.tasks())
        except Exception as exc:
            yield {
                "message": (
                    f"{automaton_model.name}: tasks() raised "
                    f"{type(exc).__name__}: {exc}"
                ),
                "file": automaton_model.file,
                "line": automaton_model.line,
            }
            continue
        reported: Set[Tuple] = set()
        for state in automaton_model.states:
            for action in automaton.enabled_local_actions(state):
                if action.key in reported:
                    continue
                try:
                    task = automaton.task_of(action)
                    problem = (
                        None
                        if task in task_set
                        else (
                            f"task_of returned {task!r}, which is not "
                            f"among tasks() = "
                            f"{sorted(task_set, key=repr)!r}"
                        )
                    )
                except Exception as exc:
                    problem = f"task_of raised {type(exc).__name__}: {exc}"
                if problem is not None:
                    reported.add(action.key)
                    yield {
                        "message": (
                            f"{automaton_model.name}: enabled local action "
                            f"{action} is not covered by the task "
                            f"partition: {problem}"
                        ),
                        "file": automaton_model.file,
                        "line": automaton_model.line,
                    }


@rule(
    "REP105",
    "dead-action-family",
    "§2.2",
    "locally-controlled families should be enabled somewhere",
    family="semantic",
    severity="warning",
)
def check_dead_families(model):
    for automaton_model in model.automata:
        automaton = automaton_model.automaton
        enabled_families: Set[Tuple] = set()
        for state in automaton_model.states:
            for action in automaton.enabled_local_actions(state):
                enabled_families.add(action.key)
        for family in sorted(automaton.signature.local, key=repr):
            if family in enabled_families:
                continue
            if family[0] == SEND_PKT and automaton_model.declares_no_sends:
                continue
            yield {
                "message": (
                    f"{automaton_model.name}: locally-controlled action "
                    f"family {family!r} is never enabled in any of "
                    f"{len(automaton_model.states)} explored states "
                    f"(dead or unreachable behavior)"
                ),
                "file": automaton_model.file,
                "line": automaton_model.line,
            }


@rule(
    "REP106",
    "nondeterministic-transition",
    "§2.2",
    "report (state, action) pairs with several post-states",
    family="semantic",
    severity="info",
)
def check_determinism(model):
    for automaton_model in model.automata:
        automaton = automaton_model.automaton
        reported: Set[Tuple] = set()
        for state in automaton_model.states:
            candidates = list(automaton.enabled_local_actions(state))
            candidates.extend(automaton_model.inputs)
            for action in candidates:
                if action.key in reported:
                    continue
                try:
                    post = automaton.transitions(state, action)
                except Exception:
                    continue  # REP103's problem, not ours
                if len(post) > 1:
                    reported.add(action.key)
                    yield {
                        "message": (
                            f"{automaton_model.name}: action {action} has "
                            f"{len(post)} post-states in state {state!r} "
                            f"(nondeterministic transition relation)"
                        ),
                        "file": automaton_model.file,
                        "line": automaton_model.line,
                    }
