"""Interprocedural abstract interpretation over protocol logic source.

This is the shared engine behind the deep source rules (REP301-REP304).
It abstractly executes the methods of a station's logic classes -- plus
any module-level helper functions they call -- over a small value
lattice:

* ``Interval`` -- integer ranges with +/-inf endpoints (widening keeps
  loops and the core-field fixpoint terminating),
* ``StrSet`` -- finite string sets (``None`` means "any string"),
* ``TupleVal`` / ``SeqVal`` / ``MapVal`` -- containers with known /
  unknown shape,
* ``Record`` -- frozen-dataclass cores and ``Packet`` values,
* ``MessageVal`` -- the opaque message token; reading ``.ident`` or
  ``.label`` yields a *tainted* value (the §5.3.1 payload channel),
  while ``.size`` stays untainted (the sanctioned §9 content channel).

Every value carries a taint set.  Taints are tuples: ``('msg', file,
line, attr)`` marks message-payload provenance (REP301) and ``('core',
field)`` marks pre-crash core provenance (the REP303 escape analysis
seeds ``on_crash`` with these).

Key design points:

* **Live-instance introspection.**  ``self.<attr>`` reads evaluate
  against the actual logic object, so construction-time configuration
  (``self.modulus``, ``self.nonvolatile``) becomes concrete and
  branches on it are pruned exactly.
* **Input clamping.**  The ``packet`` parameter of ``on_packet`` /
  ``after_send`` is clamped to the *declared* header spaces of the two
  stations, which turns the bounded-header check (REP302) into an
  inductive-invariant argument: assuming peers only emit declared
  headers, does this logic only emit declared headers?
* **Core-field fixpoint.**  Core field values are seeded from the
  concrete ``initial_core()`` and iterated through every protocol
  method until stable (widening after a few rounds), then a final
  recording pass captures ``Packet(...)`` construction sites and
  tainted branch decisions at the stable abstraction.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import math
import sys
from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..alphabets import Message, Packet
from .source import SourceAudit

NEG_INF = float("-inf")
POS_INF = float("inf")

Taint = FrozenSet[Tuple[Any, ...]]
NO_TAINT: Taint = frozenset()


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Value:
    taint: Taint = NO_TAINT

    def with_taint(self, taint: Taint) -> "Value":
        if not taint or taint <= self.taint:
            return self
        return dataclasses.replace(self, taint=self.taint | taint)


@dataclass(frozen=True)
class Top(Value):
    """Unknown value."""


@dataclass(frozen=True)
class Bottom(Value):
    """No value (empty-sequence element, unreachable)."""


@dataclass(frozen=True)
class NoneVal(Value):
    pass


@dataclass(frozen=True)
class Interval(Value):
    lo: float = NEG_INF
    hi: float = POS_INF


@dataclass(frozen=True)
class StrSet(Value):
    #: ``None`` means "any string".
    values: Optional[FrozenSet[str]] = None


@dataclass(frozen=True)
class TupleVal(Value):
    items: Tuple[Value, ...] = ()


@dataclass(frozen=True)
class SeqVal(Value):
    """A sequence of unknown length whose elements join to ``elem``."""

    elem: Value = dc_field(default_factory=Bottom)


@dataclass(frozen=True)
class MapVal(Value):
    key: Value = dc_field(default_factory=Bottom)
    val: Value = dc_field(default_factory=Bottom)


@dataclass(frozen=True)
class Record(Value):
    """A frozen-dataclass-like value (cores, ``Packet``)."""

    tag: str = ""
    fields: Tuple[Tuple[str, Value], ...] = ()

    def get(self, name: str) -> Optional[Value]:
        for key, value in self.fields:
            if key == name:
                return value
        return None

    def set(self, name: str, value: Value) -> "Record":
        fields = tuple(
            (key, value if key == name else old)
            for key, old in self.fields
        )
        if all(key != name for key, _ in self.fields):
            fields = fields + ((name, value),)
        return dataclasses.replace(self, fields=fields)


@dataclass(frozen=True)
class MessageVal(Value):
    """The opaque message token."""


@dataclass(frozen=True)
class SelfVal(Value):
    """The logic instance; attribute reads introspect the live object."""


@dataclass(frozen=True)
class FuncVal(Value):
    """A callable: ('method', name) | ('func', FuncInfo) |
    ('class', cls) | ('module', mod) | ('builtin', name) |
    ('vmethod', name, base) | ('opaque',)."""

    ref: Any = ("opaque",)


TOP = Top()
BOTTOM = Bottom()
BOOL = Interval(lo=0, hi=1)


def taint_of(value: Value) -> Taint:
    """The value's own taint plus everything reachable inside it."""
    taint = value.taint
    if isinstance(value, TupleVal):
        for item in value.items:
            taint = taint | taint_of(item)
    elif isinstance(value, SeqVal):
        taint = taint | taint_of(value.elem)
    elif isinstance(value, MapVal):
        taint = taint | taint_of(value.key) | taint_of(value.val)
    elif isinstance(value, Record):
        for _, item in value.fields:
            taint = taint | taint_of(item)
    return taint


def _merge_taint(value: Value, *others: Value) -> Value:
    taint = NO_TAINT
    for other in others:
        taint |= other.taint
    return value.with_taint(taint)


# ----------------------------------------------------------------------
# Join / widen
# ----------------------------------------------------------------------


def join(a: Value, b: Value) -> Value:
    if isinstance(a, Bottom):
        return b.with_taint(a.taint)
    if isinstance(b, Bottom):
        return a.with_taint(b.taint)
    taint = a.taint | b.taint
    if isinstance(a, Interval) and isinstance(b, Interval):
        return Interval(taint, min(a.lo, b.lo), max(a.hi, b.hi))
    if isinstance(a, StrSet) and isinstance(b, StrSet):
        if a.values is None or b.values is None:
            return StrSet(taint, None)
        return StrSet(taint, a.values | b.values)
    if isinstance(a, TupleVal) and isinstance(b, TupleVal):
        if len(a.items) == len(b.items):
            return TupleVal(
                taint,
                tuple(join(x, y) for x, y in zip(a.items, b.items)),
            )
        return SeqVal(taint, _join_all(a.items + b.items))
    if isinstance(a, SeqVal) or isinstance(b, SeqVal):
        ea = _elem_or_none(a)
        eb = _elem_or_none(b)
        if ea is not None and eb is not None:
            return SeqVal(taint, join(ea, eb))
        return Top(taint)
    if isinstance(a, MapVal) and isinstance(b, MapVal):
        return MapVal(taint, join(a.key, b.key), join(a.val, b.val))
    if isinstance(a, Record) and isinstance(b, Record) and a.tag == b.tag:
        keys = [k for k, _ in a.fields]
        for k, _ in b.fields:
            if k not in keys:
                keys.append(k)
        return Record(
            taint,
            a.tag,
            tuple(
                (k, join(a.get(k) or BOTTOM, b.get(k) or BOTTOM))
                for k in keys
            ),
        )
    if isinstance(a, NoneVal) and isinstance(b, NoneVal):
        return NoneVal(taint)
    if isinstance(a, MessageVal) and isinstance(b, MessageVal):
        return MessageVal(taint)
    if isinstance(a, SelfVal) and isinstance(b, SelfVal):
        return SelfVal(taint)
    if type(a) is type(b) and a == b:
        return a.with_taint(b.taint)
    return Top(taint)


def _elem_or_none(value: Value) -> Optional[Value]:
    if isinstance(value, SeqVal):
        return value.elem
    if isinstance(value, TupleVal):
        return _join_all(value.items)
    return None


def _join_all(values) -> Value:
    out: Value = BOTTOM
    for value in values:
        out = join(out, value)
    return out


def widen(old: Value, new: Value) -> Value:
    """Accelerate ``join(old, new)`` so chains terminate."""
    joined = join(old, new)
    return _widen_against(old, joined)


def _widen_against(old: Value, joined: Value) -> Value:
    if isinstance(joined, Interval):
        lo, hi = joined.lo, joined.hi
        if isinstance(old, Interval):
            if lo < old.lo:
                lo = NEG_INF
            if hi > old.hi:
                hi = POS_INF
        else:
            lo, hi = NEG_INF, POS_INF
        return Interval(joined.taint, lo, hi)
    if isinstance(joined, TupleVal) and isinstance(old, TupleVal):
        if len(joined.items) == len(old.items):
            return TupleVal(
                joined.taint,
                tuple(
                    _widen_against(o, j)
                    for o, j in zip(old.items, joined.items)
                ),
            )
    if isinstance(joined, SeqVal):
        old_elem = old.elem if isinstance(old, SeqVal) else BOTTOM
        return SeqVal(joined.taint, _widen_against(old_elem, joined.elem))
    if isinstance(joined, MapVal):
        old_k = old.key if isinstance(old, MapVal) else BOTTOM
        old_v = old.val if isinstance(old, MapVal) else BOTTOM
        return MapVal(
            joined.taint,
            _widen_against(old_k, joined.key),
            _widen_against(old_v, joined.val),
        )
    if (
        isinstance(joined, Record)
        and isinstance(old, Record)
        and joined.tag == old.tag
    ):
        return Record(
            joined.taint,
            joined.tag,
            tuple(
                (k, _widen_against(old.get(k) or BOTTOM, v))
                for k, v in joined.fields
            ),
        )
    return joined


def clamp_depth(value: Value, depth: int = 6) -> Value:
    """Replace structure nested deeper than ``depth`` with Top."""
    if depth <= 0:
        return Top(taint_of(value))
    if isinstance(value, TupleVal):
        return TupleVal(
            value.taint,
            tuple(clamp_depth(v, depth - 1) for v in value.items),
        )
    if isinstance(value, SeqVal):
        return SeqVal(value.taint, clamp_depth(value.elem, depth - 1))
    if isinstance(value, MapVal):
        return MapVal(
            value.taint,
            clamp_depth(value.key, depth - 1),
            clamp_depth(value.val, depth - 1),
        )
    if isinstance(value, Record):
        return Record(
            value.taint,
            value.tag,
            tuple(
                (k, clamp_depth(v, depth - 1)) for k, v in value.fields
            ),
        )
    return value


# ----------------------------------------------------------------------
# Concrete -> abstract
# ----------------------------------------------------------------------


def value_of_concrete(obj: Any, depth: int = 0) -> Value:
    if depth > 6:
        return TOP
    if obj is None:
        return NoneVal()
    if isinstance(obj, bool):
        return Interval(NO_TAINT, int(obj), int(obj))
    if isinstance(obj, (int, float)):
        return Interval(NO_TAINT, obj, obj)
    if isinstance(obj, str):
        return StrSet(NO_TAINT, frozenset([obj]))
    if isinstance(obj, Message):
        return MessageVal()
    if isinstance(obj, (tuple, list)):
        if len(obj) <= 8:
            return TupleVal(
                NO_TAINT,
                tuple(value_of_concrete(o, depth + 1) for o in obj),
            )
        return SeqVal(
            NO_TAINT,
            _join_all(value_of_concrete(o, depth + 1) for o in obj),
        )
    if isinstance(obj, (set, frozenset)):
        return SeqVal(
            NO_TAINT,
            _join_all(value_of_concrete(o, depth + 1) for o in obj),
        )
    if isinstance(obj, dict):
        return MapVal(
            NO_TAINT,
            _join_all(value_of_concrete(k, depth + 1) for k in obj),
            _join_all(
                value_of_concrete(v, depth + 1) for v in obj.values()
            ),
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return Record(
            NO_TAINT,
            type(obj).__name__,
            tuple(
                (
                    f.name,
                    value_of_concrete(getattr(obj, f.name), depth + 1),
                )
                for f in dataclasses.fields(obj)
            ),
        )
    return TOP


def abstract_header_space(space) -> Value:
    """Join of the concrete headers in a declared header space."""
    if not space:
        return BOTTOM
    return _join_all(value_of_concrete(h) for h in space)


# ----------------------------------------------------------------------
# Program model
# ----------------------------------------------------------------------


@dataclass
class FuncInfo:
    """One analyzable function: a method or a module-level helper."""

    node: ast.FunctionDef
    file: str
    offset: int  # add to node linenos for absolute file lines
    module: str

    def line(self, node: ast.AST) -> int:
        return self.offset + getattr(node, "lineno", 1)


_MODULE_CACHE: Dict[str, Dict[str, FuncInfo]] = {}


def _module_functions(file: str, module: str) -> Dict[str, FuncInfo]:
    if file in _MODULE_CACHE:
        return _MODULE_CACHE[file]
    funcs: Dict[str, FuncInfo] = {}
    try:
        with open(file, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError):
        tree = ast.Module(body=[], type_ignores=[])
    for statement in tree.body:
        if isinstance(statement, ast.FunctionDef):
            funcs[statement.name] = FuncInfo(statement, file, 0, module)
    _MODULE_CACHE[file] = funcs
    return funcs


class ProgramModel:
    """Everything the analyzer can resolve for one station's logic."""

    def __init__(self, audit: SourceAudit):
        self.audit = audit
        self.logic = audit.logic
        self.methods: Dict[str, FuncInfo] = {}
        self.helpers: Dict[Tuple[str, str], FuncInfo] = {}
        for source in audit.classes:  # MRO order: first override wins
            module = source.cls.__module__
            for statement in source.tree.body:
                if not isinstance(statement, ast.ClassDef):
                    continue
                for item in statement.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name not in self.methods
                    ):
                        self.methods[item.name] = FuncInfo(
                            item, source.file, source.line - 1, module
                        )
            for name, info in _module_functions(
                source.file, module
            ).items():
                self.helpers.setdefault((module, name), info)

    def resolve_global(self, module: str, name: str) -> Any:
        mod = sys.modules.get(module)
        if mod is None:
            return _MISSING
        return getattr(mod, name, _MISSING)

    def helper(self, module: str, name: str) -> Optional[FuncInfo]:
        return self.helpers.get((module, name))


class _Missing:
    pass


_MISSING = _Missing()


# ----------------------------------------------------------------------
# Analysis results
# ----------------------------------------------------------------------


@dataclass
class Site:
    """One observation made during the final recording pass."""

    kind: str  # "header" (Packet construction) or "branch"
    file: str
    line: int
    value: Value
    method: str = ""

    @property
    def msg_taints(self) -> List[Tuple[Any, ...]]:
        return sorted(
            t for t in taint_of(self.value) if t and t[0] == "msg"
        )


@dataclass
class AnalysisResult:
    """Stable core abstraction + recorded sites for one station."""

    audit: SourceAudit
    core: Value
    header_sites: List[Site]
    branch_sites: List[Site]
    methods: List[str]


#: Protocol methods iterated for the core-field fixpoint, with the
#: kind of their third parameter (after ``self`` and ``core``).
PROTOCOL_METHODS: Dict[str, Optional[str]] = {
    "on_wake": None,
    "on_fail": None,
    "on_crash": None,
    "on_send_msg": "message",
    "on_packet": "packet",
    "enabled_sends": None,
    "after_send": "packet",
    "enabled_deliveries": None,
    "after_delivery": "message",
}

_FIXPOINT_ROUNDS = 14
_WIDEN_AFTER = 8
_LOOP_ROUNDS = 10
_LOOP_WIDEN_AFTER = 6
_CALL_DEPTH = 10


class Frame:
    """Per-call collection of returned and yielded values."""

    def __init__(self) -> None:
        self.returns: List[Value] = []
        self.yields: List[Value] = []

    def result(self) -> Value:
        if self.yields:
            return SeqVal(NO_TAINT, _join_all(self.yields))
        if self.returns:
            return _join_all(self.returns)
        return NoneVal()


class Analyzer:
    """Abstractly interprets one station's methods."""

    def __init__(self, model: ProgramModel, packet_header: Value = TOP):
        self.model = model
        self.packet_header = packet_header
        self.recording = False
        self.header_sites: List[Site] = []
        self.branch_sites: List[Site] = []
        self._stack: List[FuncInfo] = []

    # -- entry points ---------------------------------------------------

    def packet_value(self) -> Value:
        return Record(
            NO_TAINT,
            "Packet",
            (
                ("header", self.packet_header),
                ("body", SeqVal(NO_TAINT, MessageVal())),
                ("uid", NoneVal()),
            ),
        )

    def run_method(
        self, name: str, core: Value, extra: Optional[Value] = None
    ) -> Frame:
        """Interpret one protocol method with ``core`` bound."""
        info = self.model.methods[name]
        kind = PROTOCOL_METHODS.get(name)
        params = [arg.arg for arg in info.node.args.args]
        env: Dict[str, Value] = {}
        values: List[Value] = [SelfVal(), core]
        if len(params) > 2:
            if extra is not None:
                values.append(extra)
            elif kind == "packet":
                values.append(self.packet_value())
            elif kind == "message":
                values.append(MessageVal())
            else:
                values.append(TOP)
        for param, value in zip(params, values):
            env[param] = value
        for param in params[len(values):]:
            env[param] = TOP
        frame = Frame()
        self._stack.append(info)
        try:
            self.exec_block(info.node.body, env, frame, info)
        finally:
            self._stack.pop()
        return frame

    # -- statements -----------------------------------------------------

    def exec_block(self, stmts, env, frame, info):
        for statement in stmts:
            env = self.exec_stmt(statement, env, frame, info)
            if env is None:
                return None
        return env

    def exec_stmt(self, node, env, frame, info):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.AugAssign):
                value = self._binop(
                    node.op,
                    self.eval(node.target, env, frame, info),
                    self.eval(node.value, env, frame, info),
                )
                targets = [node.target]
            else:
                if node.value is None:
                    return env
                value = self.eval(node.value, env, frame, info)
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
            value = clamp_depth(value)
            for target in targets:
                env = self.assign(target, value, env)
            return env
        if isinstance(node, ast.If):
            return self._exec_branch(
                node.test, node.body, node.orelse, env, frame, info
            )
        if isinstance(node, ast.Return):
            value = (
                self.eval(node.value, env, frame, info)
                if node.value is not None
                else NoneVal()
            )
            frame.returns.append(clamp_depth(value))
            return None
        if isinstance(node, ast.Expr):
            self.eval(node.value, env, frame, info)
            return env
        if isinstance(node, (ast.While, ast.For)):
            return self._exec_loop(node, env, frame, info)
        if isinstance(node, ast.Raise):
            return None
        if isinstance(node, (ast.Break, ast.Continue)):
            return None
        if isinstance(node, ast.Try):
            out = self.exec_block(node.body, dict(env), frame, info)
            for handler in node.handlers:
                alt = self.exec_block(handler.body, dict(env), frame, info)
                out = _join_env(out, alt)
            if node.finalbody:
                base = out if out is not None else env
                out = self.exec_block(
                    node.finalbody, dict(base), frame, info
                )
            return out
        if isinstance(node, ast.With):
            return self.exec_block(node.body, env, frame, info)
        if isinstance(node, ast.Assert):
            self._note_branch(node.test, env, frame, info)
            return self.refine(env, node.test, True, frame, info)
        return env

    def _exec_branch(self, test, body, orelse, env, frame, info):
        condition = self.eval(test, env, frame, info)
        self._note_branch_value(test, condition, info)
        truthy = truth(condition)
        out = None
        if truthy is not False:
            env_true = self.refine(dict(env), test, True, frame, info)
            out = _join_env(
                out, self.exec_block(body, env_true, frame, info)
            )
        if truthy is not True:
            env_false = self.refine(dict(env), test, False, frame, info)
            out = _join_env(
                out, self.exec_block(orelse, env_false, frame, info)
            )
        return out

    def _exec_loop(self, node, env, frame, info):
        is_for = isinstance(node, ast.For)
        if is_for:
            iterable = self.eval(node.iter, env, frame, info)
            elem = iter_elem(iterable)
        loop_env = dict(env)
        for round_no in range(_LOOP_ROUNDS):
            body_env = dict(loop_env)
            if is_for:
                body_env = self.assign(node.target, elem, body_env)
            else:
                condition = self.eval(node.test, body_env, frame, info)
                self._note_branch_value(node.test, condition, info)
                if truth(condition) is False:
                    break
                body_env = self.refine(
                    body_env, node.test, True, frame, info
                )
            after = self.exec_block(node.body, body_env, frame, info)
            if after is None:
                break
            merge = widen if round_no >= _LOOP_WIDEN_AFTER else None
            new_env = _merge_envs(loop_env, after, merge)
            if new_env == loop_env:
                loop_env = new_env
                break
            loop_env = new_env
        if node.orelse:
            out = self.exec_block(node.orelse, loop_env, frame, info)
            if out is not None:
                loop_env = out
        return loop_env

    def assign(self, target, value, env):
        if isinstance(target, ast.Name):
            env[target.id] = value
            return env
        if isinstance(target, (ast.Tuple, ast.List)):
            parts = self._unpack(value, len(target.elts))
            for sub, part in zip(target.elts, parts):
                if isinstance(sub, ast.Starred):
                    env = self.assign(
                        sub.value, SeqVal(NO_TAINT, part), env
                    )
                else:
                    env = self.assign(sub, part, env)
            return env
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            base = env.get(target.value.id)
            if isinstance(base, MapVal):
                env[target.value.id] = MapVal(
                    base.taint, join(base.key, TOP), join(base.val, value)
                )
            elif isinstance(base, (SeqVal, TupleVal)):
                env[target.value.id] = SeqVal(
                    base.taint,
                    join(_elem_or_none(base) or BOTTOM, value),
                )
            return env
        return env

    def _unpack(self, value: Value, count: int) -> List[Value]:
        if isinstance(value, TupleVal) and len(value.items) == count:
            return [
                item.with_taint(value.taint) for item in value.items
            ]
        elem = _elem_or_none(value)
        if elem is None:
            elem = Top(taint_of(value))
        else:
            elem = elem.with_taint(value.taint)
        return [elem] * count

    # -- expressions ----------------------------------------------------

    def eval(self, node, env, frame, info) -> Value:
        if node is None:
            return NoneVal()
        if isinstance(node, ast.Constant):
            return value_of_concrete(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self._resolve_name(node.id, info)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env, frame, info)
        if isinstance(node, ast.BinOp):
            return self._binop(
                node.op,
                self.eval(node.left, env, frame, info),
                self.eval(node.right, env, frame, info),
            )
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env, frame, info)
            if isinstance(node.op, ast.USub) and isinstance(
                operand, Interval
            ):
                return Interval(operand.taint, -operand.hi, -operand.lo)
            if isinstance(node.op, ast.Not):
                return BOOL.with_taint(taint_of(operand))
            return Top(taint_of(operand))
        if isinstance(node, ast.BoolOp):
            values = [
                self.eval(v, env, frame, info) for v in node.values
            ]
            return _join_all(values)
        if isinstance(node, ast.Compare):
            taint = taint_of(self.eval(node.left, env, frame, info))
            for comparator in node.comparators:
                taint |= taint_of(
                    self.eval(comparator, env, frame, info)
                )
            return BOOL.with_taint(taint)
        if isinstance(node, ast.IfExp):
            condition = self.eval(node.test, env, frame, info)
            self._note_branch_value(node.test, condition, info)
            truthy = truth(condition)
            out: Value = BOTTOM
            if truthy is not False:
                env_true = self.refine(
                    dict(env), node.test, True, frame, info
                )
                out = join(
                    out, self.eval(node.body, env_true, frame, info)
                )
            if truthy is not True:
                env_false = self.refine(
                    dict(env), node.test, False, frame, info
                )
                out = join(
                    out, self.eval(node.orelse, env_false, frame, info)
                )
            return out
        if isinstance(node, ast.Call):
            return self._call(node, env, frame, info)
        if isinstance(node, (ast.Tuple, ast.List)):
            items: List[Value] = []
            sequence = False
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    sequence = True
                    items.append(
                        _elem_or_none(
                            self.eval(elt.value, env, frame, info)
                        )
                        or TOP
                    )
                else:
                    items.append(self.eval(elt, env, frame, info))
            if sequence:
                return SeqVal(NO_TAINT, _join_all(items))
            return TupleVal(NO_TAINT, tuple(items))
        if isinstance(node, ast.Set):
            return SeqVal(
                NO_TAINT,
                _join_all(
                    self.eval(e, env, frame, info) for e in node.elts
                ),
            )
        if isinstance(node, ast.Dict):
            keys = _join_all(
                self.eval(k, env, frame, info)
                for k in node.keys
                if k is not None
            )
            vals = _join_all(
                self.eval(v, env, frame, info) for v in node.values
            )
            return MapVal(NO_TAINT, keys, vals)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env, frame, info)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            comp_env = self._comp_env(node, env, frame, info)
            return SeqVal(
                NO_TAINT, self.eval(node.elt, comp_env, frame, info)
            )
        if isinstance(node, ast.DictComp):
            comp_env = self._comp_env(node, env, frame, info)
            return MapVal(
                NO_TAINT,
                self.eval(node.key, comp_env, frame, info),
                self.eval(node.value, comp_env, frame, info),
            )
        if isinstance(node, ast.JoinedStr):
            taint = NO_TAINT
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    taint |= taint_of(
                        self.eval(part.value, env, frame, info)
                    )
            return StrSet(taint, None)
        if isinstance(node, ast.Yield):
            value = (
                self.eval(node.value, env, frame, info)
                if node.value is not None
                else NoneVal()
            )
            frame.yields.append(clamp_depth(value))
            return NoneVal()
        if isinstance(node, ast.YieldFrom):
            value = self.eval(node.value, env, frame, info)
            frame.yields.append(iter_elem(value))
            return NoneVal()
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env, frame, info)
        if isinstance(node, ast.Lambda):
            return FuncVal(NO_TAINT, ("opaque",))
        return TOP

    def _comp_env(self, node, env, frame, info):
        comp_env = dict(env)
        for generator in node.generators:
            iterable = self.eval(generator.iter, comp_env, frame, info)
            comp_env = self.assign(
                generator.target, iter_elem(iterable), comp_env
            )
            for condition in generator.ifs:
                value = self.eval(condition, comp_env, frame, info)
                self._note_branch_value(condition, value, info)
                comp_env = self.refine(
                    comp_env, condition, True, frame, info
                )
        return comp_env

    def _resolve_name(self, name: str, info: FuncInfo) -> Value:
        obj = self.model.resolve_global(info.module, name)
        if obj is _MISSING:
            import builtins

            if hasattr(builtins, name):
                return FuncVal(NO_TAINT, ("builtin", name))
            return TOP
        if obj is dataclasses.replace:
            return FuncVal(NO_TAINT, ("builtin", "replace"))
        if inspect.isfunction(obj):
            helper = self.model.helper(info.module, name)
            if helper is not None:
                return FuncVal(NO_TAINT, ("func", helper))
            return FuncVal(NO_TAINT, ("opaque",))
        if inspect.isbuiltin(obj):
            return FuncVal(NO_TAINT, ("builtin", obj.__name__))
        if inspect.isclass(obj):
            return FuncVal(NO_TAINT, ("class", obj))
        if inspect.ismodule(obj):
            return FuncVal(NO_TAINT, ("module", obj))
        return value_of_concrete(obj)

    def _attribute(self, node, env, frame, info) -> Value:
        base = self.eval(node.value, env, frame, info)
        attr = node.attr
        if isinstance(base, SelfVal):
            if attr in self.model.methods:
                return FuncVal(base.taint, ("method", attr))
            obj = getattr(self.model.logic, attr, _MISSING)
            if obj is _MISSING:
                return Top(base.taint)
            if callable(obj) and not isinstance(
                obj, (int, float, str, tuple, frozenset)
            ):
                return FuncVal(base.taint, ("opaque",))
            return value_of_concrete(obj).with_taint(base.taint)
        if isinstance(base, MessageVal):
            if attr in ("ident", "label"):
                mark = frozenset(
                    [("msg", info.file, info.line(node), attr)]
                )
                return Top(base.taint | mark)
            if attr == "size":
                return Interval(base.taint, 0, POS_INF)
            return Top(base.taint)
        if isinstance(base, Record):
            value = base.get(attr)
            if value is not None:
                return value.with_taint(base.taint)
            return Top(taint_of(base))
        if isinstance(base, FuncVal) and base.ref[0] == "module":
            return FuncVal(
                base.taint, ("modattr", base.ref[1].__name__, attr)
            )
        return FuncVal(taint_of(base), ("vmethod", attr, base))

    def _subscript(self, node, env, frame, info) -> Value:
        base = self.eval(node.value, env, frame, info)
        if isinstance(node.slice, ast.Slice):
            if isinstance(base, TupleVal):
                lo = hi = None
                precise = True
                if node.slice.lower is not None:
                    lo = _concrete_int(
                        self.eval(node.slice.lower, env, frame, info)
                    )
                    precise = precise and lo is not None
                if node.slice.upper is not None:
                    hi = _concrete_int(
                        self.eval(node.slice.upper, env, frame, info)
                    )
                    precise = precise and hi is not None
                if precise and node.slice.step is None:
                    return TupleVal(base.taint, base.items[lo:hi])
                return SeqVal(base.taint, _join_all(base.items))
            if isinstance(base, SeqVal):
                return base
            if isinstance(base, StrSet):
                return StrSet(base.taint, None)
            return Top(taint_of(base))
        index = self.eval(node.slice, env, frame, info)
        if isinstance(base, TupleVal):
            i = _concrete_int(index)
            if i is not None and -len(base.items) <= i < len(base.items):
                return base.items[i].with_taint(
                    base.taint | index.taint
                )
            return _join_all(base.items).with_taint(
                base.taint | taint_of(index)
            )
        if isinstance(base, SeqVal):
            return base.elem.with_taint(base.taint | taint_of(index))
        if isinstance(base, MapVal):
            return base.val.with_taint(base.taint | taint_of(index))
        if isinstance(base, StrSet):
            return StrSet(base.taint | taint_of(index), None)
        return Top(taint_of(base) | taint_of(index))

    # -- calls ----------------------------------------------------------

    def _call(self, node, env, frame, info) -> Value:
        args = []
        for arg in node.args:
            value = self.eval(arg, env, frame, info)
            if isinstance(arg, ast.Starred):
                args.append(iter_elem(value))
            else:
                args.append(value)
        kwargs = {
            kw.arg: self.eval(kw.value, env, frame, info)
            for kw in node.keywords
            if kw.arg is not None
        }
        func = self.eval(node.func, env, frame, info)
        if not isinstance(func, FuncVal):
            return Top(taint_of(func))
        return self.apply(func, args, kwargs, node, env, frame, info)

    def apply(self, func, args, kwargs, node, env, frame, info) -> Value:
        kind = func.ref[0]
        if kind == "method":
            target = self.model.methods.get(func.ref[1])
            if target is None:
                return _call_taint(args, kwargs)
            return self._interp_call(
                target, [SelfVal()] + args, kwargs, node, info
            )
        if kind == "func":
            return self._interp_call(
                func.ref[1], args, kwargs, node, info
            )
        if kind == "class":
            return self._construct(
                func.ref[1], args, kwargs, node, info
            )
        if kind == "builtin":
            return self._builtin(func.ref[1], args, kwargs)
        if kind == "modattr":
            return self._modattr(func.ref[1], func.ref[2], args)
        if kind == "vmethod":
            return self._vmethod(func.ref[1], func.ref[2], args, kwargs)
        return _call_taint(args, kwargs)

    def _interp_call(self, target, args, kwargs, node, info) -> Value:
        if target in self._stack or len(self._stack) >= _CALL_DEPTH:
            return _call_taint(args, kwargs)
        params = target.node.args
        names = [a.arg for a in params.args]
        env: Dict[str, Value] = {}
        for name, value in zip(names, args):
            env[name] = value
        defaults = params.defaults
        default_names = names[len(names) - len(defaults):]
        for name, default in zip(default_names, defaults):
            if name not in env:
                env[name] = self.eval(default, {}, Frame(), target)
        for name in names:
            if name in kwargs:
                env[name] = kwargs[name]
            env.setdefault(name, TOP)
        frame = Frame()
        self._stack.append(target)
        try:
            self.exec_block(target.node.body, env, frame, target)
        finally:
            self._stack.pop()
        return frame.result()

    def _construct(self, cls, args, kwargs, node, info) -> Value:
        if cls is Packet:
            header = args[0] if args else kwargs.get("header", TOP)
            body = (
                args[1]
                if len(args) > 1
                else kwargs.get("body", TupleVal())
            )
            if self.recording:
                self.header_sites.append(
                    Site(
                        "header",
                        info.file,
                        info.line(node),
                        header,
                        self._stack[0].node.name if self._stack else "",
                    )
                )
            return Record(
                NO_TAINT,
                "Packet",
                (
                    ("header", header),
                    ("body", body),
                    ("uid", NoneVal()),
                ),
            )
        if cls is Message:
            return MessageVal()
        if dataclasses.is_dataclass(cls):
            fields = []
            spec = dataclasses.fields(cls)
            for index, f in enumerate(spec):
                if index < len(args):
                    fields.append((f.name, args[index]))
                elif f.name in kwargs:
                    fields.append((f.name, kwargs[f.name]))
                elif f.default is not dataclasses.MISSING:
                    fields.append(
                        (f.name, value_of_concrete(f.default))
                    )
                elif f.default_factory is not dataclasses.MISSING:
                    try:
                        fields.append(
                            (
                                f.name,
                                value_of_concrete(f.default_factory()),
                            )
                        )
                    except Exception:
                        fields.append((f.name, TOP))
                else:
                    fields.append((f.name, TOP))
            return Record(NO_TAINT, cls.__name__, tuple(fields))
        return _call_taint(args, kwargs)

    def _builtin(self, name, args, kwargs) -> Value:
        a = args[0] if args else TOP
        if name == "replace":
            if isinstance(a, Record):
                record = a
                for key, value in kwargs.items():
                    record = record.set(key, clamp_depth(value))
                return record
            return _call_taint(args, kwargs)
        if name == "len":
            if isinstance(a, TupleVal):
                return Interval(
                    taint_of(a), len(a.items), len(a.items)
                )
            return Interval(taint_of(a), 0, POS_INF)
        if name == "range":
            if len(args) == 1 and isinstance(a, Interval):
                hi = a.hi - 1
                return SeqVal(NO_TAINT, Interval(a.taint, 0, max(hi, 0)))
            if (
                len(args) >= 2
                and isinstance(args[0], Interval)
                and isinstance(args[1], Interval)
            ):
                lo = args[0].lo
                hi = args[1].hi - 1
                return SeqVal(
                    NO_TAINT,
                    Interval(_taints(args), lo, max(hi, lo)),
                )
            return SeqVal(NO_TAINT, Interval(_taints(args), 0, POS_INF))
        if name in ("min", "max"):
            values = args
            if len(args) == 1:
                elem = _elem_or_none(a)
                values = [elem if elem is not None else TOP]
            intervals = [v for v in values if isinstance(v, Interval)]
            if len(intervals) == len(values) and intervals:
                if name == "min":
                    return Interval(
                        _taints(values),
                        min(v.lo for v in intervals),
                        min(v.hi for v in intervals),
                    )
                return Interval(
                    _taints(values),
                    max(v.lo for v in intervals),
                    max(v.hi for v in intervals),
                )
            return Top(_taints(values))
        if name == "abs":
            if isinstance(a, Interval):
                lo, hi = a.lo, a.hi
                bounds = [abs(lo), abs(hi)]
                new_lo = 0.0 if lo <= 0 <= hi else min(bounds)
                return Interval(a.taint, new_lo, max(bounds))
            return Top(taint_of(a))
        if name in ("int", "round"):
            if isinstance(a, Interval):
                return a
            return Interval(_taints(args), NEG_INF, POS_INF)
        if name == "bool":
            return BOOL.with_taint(_taints(args))
        if name in ("sorted", "list", "tuple", "set", "frozenset", "reversed"):
            if isinstance(a, TupleVal) and name in ("tuple", "list"):
                return a
            elem = _elem_or_none(a)
            if elem is None:
                elem = iter_elem(a)
            return SeqVal(taint_of(a), elem)
        if name == "dict":
            if isinstance(a, MapVal):
                return a
            elem = iter_elem(a)
            parts = self._unpack(elem, 2)
            return MapVal(taint_of(a), parts[0], parts[1])
        if name == "enumerate":
            return SeqVal(
                NO_TAINT,
                TupleVal(
                    taint_of(a),
                    (Interval(NO_TAINT, 0, POS_INF), iter_elem(a)),
                ),
            )
        if name == "zip":
            return SeqVal(
                NO_TAINT,
                TupleVal(NO_TAINT, tuple(iter_elem(v) for v in args)),
            )
        if name == "sum":
            return Interval(_taints(args), NEG_INF, POS_INF)
        if name == "divmod":
            return TupleVal(
                _taints(args),
                (Interval(), Interval(NO_TAINT, 0, POS_INF)),
            )
        if name in ("isinstance", "issubclass", "hasattr", "any", "all"):
            return BOOL.with_taint(_taints(args))
        if name == "print":
            return NoneVal()
        if name == "str":
            return StrSet(_taints(args), None)
        return _call_taint(args, kwargs)

    def _modattr(self, module, attr, args) -> Value:
        a = args[0] if args else TOP
        if module == "math" and attr in ("ceil", "floor"):
            if isinstance(a, Interval):
                lo = a.lo if a.lo in (NEG_INF, POS_INF) else (
                    math.ceil(a.lo) if attr == "ceil" else math.floor(a.lo)
                )
                hi = a.hi if a.hi in (NEG_INF, POS_INF) else (
                    math.ceil(a.hi) if attr == "ceil" else math.floor(a.hi)
                )
                return Interval(a.taint, lo, hi)
            return Interval(taint_of(a), NEG_INF, POS_INF)
        return _call_taint(args, {})

    def _vmethod(self, name, base, args, kwargs) -> Value:
        taint = taint_of(base) | _taints(args)
        if isinstance(base, MapVal):
            if name == "items":
                return SeqVal(
                    base.taint,
                    TupleVal(NO_TAINT, (base.key, base.val)),
                )
            if name == "keys":
                return SeqVal(base.taint, base.key)
            if name == "values":
                return SeqVal(base.taint, base.val)
            if name in ("get", "pop"):
                default = args[1] if len(args) > 1 else NoneVal()
                return join(base.val, default).with_taint(taint)
        if isinstance(base, StrSet):
            if name in ("startswith", "endswith", "isdigit"):
                return BOOL.with_taint(taint)
            return StrSet(taint, None)
        if isinstance(base, Record) and base.tag == "Packet":
            if name in ("strip_uid", "with_uid"):
                return base
        if isinstance(base, (SeqVal, TupleVal)):
            if name in ("index", "count"):
                return Interval(taint, 0, POS_INF)
        return Top(taint)

    # -- operators ------------------------------------------------------

    def _binop(self, op, left: Value, right: Value) -> Value:
        taint = taint_of(left) | taint_of(right)
        if isinstance(op, ast.Mod):
            if isinstance(left, StrSet):
                return StrSet(taint, None)
            if isinstance(left, Interval) and isinstance(right, Interval):
                return _interval_mod(left, right).with_taint(taint)
            return Top(taint)
        if isinstance(op, (ast.Add, ast.BitOr)) and (
            _is_sequence(left) or _is_sequence(right)
        ):
            ea = _elem_or_none(left)
            eb = _elem_or_none(right)
            if ea is not None and eb is not None:
                return SeqVal(left.taint | right.taint, join(ea, eb))
            return Top(taint)
        if isinstance(op, ast.Add) and (
            isinstance(left, StrSet) or isinstance(right, StrSet)
        ):
            return StrSet(taint, None)
        if isinstance(left, Interval) and isinstance(right, Interval):
            return _interval_arith(op, left, right).with_taint(taint)
        if isinstance(op, ast.Mult) and _is_sequence(left):
            return SeqVal(taint, _elem_or_none(left) or TOP)
        return Top(taint)

    # -- refinement -----------------------------------------------------

    def refine(self, env, test, branch, frame, info):
        """Narrow ``env`` assuming ``test`` evaluates to ``branch``."""
        if isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ):
            return self.refine(env, test.operand, not branch, frame, info)
        if isinstance(test, ast.BoolOp):
            conjunctive = isinstance(test.op, ast.And) == branch
            if conjunctive:
                for value in test.values:
                    env = self.refine(env, value, branch, frame, info)
            return env
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._refine_compare(env, test, branch, frame, info)
        path = _path_of(test)
        if path is not None:
            current = _get_path(env, path)
            if isinstance(current, Interval):
                if branch:
                    if current.lo >= 0:
                        env = _set_path(
                            env,
                            path,
                            Interval(
                                current.taint,
                                max(current.lo, 1),
                                max(current.hi, 1),
                            ),
                        )
                elif current.lo <= 0 <= current.hi:
                    env = _set_path(
                        env, path, Interval(current.taint, 0, 0)
                    )
        return env

    def _refine_compare(self, env, test, branch, frame, info):
        op = test.ops[0]
        if not branch:
            op = _NEGATED.get(type(op))
            if op is None:
                return env
            op = op()
        sides = [
            (test.left, test.comparators[0]),
            (test.comparators[0], test.left),
        ]
        for flip, (subject, other) in enumerate(sides):
            path, delta = _shifted_path(subject)
            if path is None:
                continue
            current = _get_path(env, path)
            bound = self.eval(other, env, Frame(), info)
            effective = op if not flip else _MIRRORED.get(type(op), lambda: None)()
            if effective is None:
                continue
            refined = _apply_compare(current, effective, bound, delta)
            if refined is not None:
                env = _set_path(env, path, refined)
        return env

    # -- site recording -------------------------------------------------

    def _note_branch(self, test, env, frame, info):
        value = self.eval(test, env, frame, info)
        self._note_branch_value(test, value, info)

    def _note_branch_value(self, test, value, info):
        if not self.recording:
            return
        if any(t and t[0] == "msg" for t in taint_of(value)):
            self.branch_sites.append(
                Site(
                    "branch",
                    info.file,
                    info.line(test),
                    value,
                    self._stack[0].node.name if self._stack else "",
                )
            )


# ----------------------------------------------------------------------
# Operator helpers
# ----------------------------------------------------------------------


def _is_sequence(value: Value) -> bool:
    return isinstance(value, (SeqVal, TupleVal))


def _concrete_int(value: Value) -> Optional[int]:
    if (
        isinstance(value, Interval)
        and value.lo == value.hi
        and value.lo not in (NEG_INF, POS_INF)
    ):
        return int(value.lo)
    return None


def _taints(values) -> Taint:
    out: Taint = NO_TAINT
    for value in values:
        out |= taint_of(value)
    return out


def _call_taint(args, kwargs) -> Value:
    return Top(_taints(list(args) + list(kwargs.values())))


def _interval_mod(left: Interval, right: Interval) -> Value:
    if right.lo == right.hi and right.lo > 0:
        d = right.lo
        if left.lo >= 0 and left.hi < d:
            return Interval(NO_TAINT, left.lo, left.hi)
        return Interval(NO_TAINT, 0, d - 1)
    if right.lo >= 0 and right.hi not in (POS_INF,):
        return Interval(NO_TAINT, 0, max(right.hi - 1, 0))
    return Interval(NO_TAINT, NEG_INF, POS_INF)


def _mul(a: float, b: float) -> float:
    if a == 0 or b == 0:
        return 0.0
    return a * b


def _interval_arith(op, left: Interval, right: Interval) -> Value:
    if isinstance(op, ast.Add):
        return Interval(NO_TAINT, left.lo + right.lo, left.hi + right.hi)
    if isinstance(op, ast.Sub):
        return Interval(NO_TAINT, left.lo - right.hi, left.hi - right.lo)
    if isinstance(op, ast.Mult):
        products = [
            _mul(left.lo, right.lo),
            _mul(left.lo, right.hi),
            _mul(left.hi, right.lo),
            _mul(left.hi, right.hi),
        ]
        return Interval(NO_TAINT, min(products), max(products))
    if isinstance(op, ast.FloorDiv):
        if right.lo == right.hi and right.lo >= 1:
            d = right.lo
            lo = left.lo if left.lo in (NEG_INF, POS_INF) else left.lo // d
            hi = left.hi if left.hi in (NEG_INF, POS_INF) else left.hi // d
            return Interval(NO_TAINT, lo, hi)
        return Interval(NO_TAINT, NEG_INF, POS_INF)
    if isinstance(op, (ast.BitXor, ast.BitAnd, ast.BitOr)):
        if (
            0 <= left.lo <= left.hi <= 64
            and 0 <= right.lo <= right.hi <= 64
        ):
            results = []
            for x in range(int(left.lo), int(left.hi) + 1):
                for y in range(int(right.lo), int(right.hi) + 1):
                    if isinstance(op, ast.BitXor):
                        results.append(x ^ y)
                    elif isinstance(op, ast.BitAnd):
                        results.append(x & y)
                    else:
                        results.append(x | y)
            return Interval(NO_TAINT, min(results), max(results))
        return Interval(NO_TAINT, NEG_INF, POS_INF)
    return Interval(NO_TAINT, NEG_INF, POS_INF)


_NEGATED = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}

_MIRRORED = {
    ast.Lt: ast.Gt,
    ast.LtE: ast.GtE,
    ast.Gt: ast.Lt,
    ast.GtE: ast.LtE,
    ast.Eq: ast.Eq,
    ast.NotEq: ast.NotEq,
}


def _path_of(node) -> Optional[Tuple[str, ...]]:
    if isinstance(node, ast.Name):
        return (node.id,)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id != "self"
    ):
        return (node.value.id, node.attr)
    return None


def _shifted_path(node):
    """A refinable path plus a constant shift: ``core.x + 1`` -> +1."""
    path = _path_of(node)
    if path is not None:
        return path, 0
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        sign = 1 if isinstance(node.op, ast.Add) else -1
        if isinstance(node.right, ast.Constant) and isinstance(
            node.right.value, int
        ):
            path = _path_of(node.left)
            if path is not None:
                return path, sign * node.right.value
    return None, 0


def _get_path(env, path) -> Optional[Value]:
    base = env.get(path[0])
    if base is None:
        return None
    if len(path) == 1:
        return base
    if isinstance(base, Record):
        return base.get(path[1])
    return None


def _set_path(env, path, value):
    if len(path) == 1:
        env[path[0]] = value
        return env
    base = env.get(path[0])
    if isinstance(base, Record):
        env[path[0]] = base.set(path[1], value)
    return env


def _apply_compare(current, op, bound, delta) -> Optional[Value]:
    """Refine ``current`` assuming ``current + delta OP bound``."""
    if current is None:
        return None
    if isinstance(current, Interval) and isinstance(bound, Interval):
        lo, hi = current.lo, current.hi
        if isinstance(op, ast.Lt):
            hi = min(hi, bound.hi - 1 - delta)
        elif isinstance(op, ast.LtE):
            hi = min(hi, bound.hi - delta)
        elif isinstance(op, ast.Gt):
            lo = max(lo, bound.lo + 1 - delta)
        elif isinstance(op, ast.GtE):
            lo = max(lo, bound.lo - delta)
        elif isinstance(op, ast.Eq):
            lo = max(lo, bound.lo - delta)
            hi = min(hi, bound.hi - delta)
        elif isinstance(op, ast.NotEq):
            if bound.lo == bound.hi:
                point = bound.lo - delta
                if lo == point:
                    lo = lo + 1
                if hi == point:
                    hi = hi - 1
        if lo > hi:
            return current  # contradiction: keep (path unreachable)
        return Interval(current.taint, lo, hi)
    if (
        isinstance(current, StrSet)
        and isinstance(bound, StrSet)
        and delta == 0
        and current.values is not None
    ):
        if isinstance(op, ast.Eq) and bound.values is not None:
            remaining = current.values & bound.values
            if remaining:
                return StrSet(current.taint, remaining)
        if (
            isinstance(op, ast.NotEq)
            and bound.values is not None
            and len(bound.values) == 1
        ):
            remaining = current.values - bound.values
            if remaining:
                return StrSet(current.taint, remaining)
    return None


def truth(value: Value) -> Optional[bool]:
    if isinstance(value, Interval):
        if value.lo > 0 or value.hi < 0:
            return True
        if value.lo == value.hi == 0:
            return False
        return None
    if isinstance(value, StrSet) and value.values is not None:
        truths = {bool(s) for s in value.values}
        if len(truths) == 1:
            return truths.pop()
        return None
    if isinstance(value, TupleVal):
        return len(value.items) > 0
    if isinstance(value, NoneVal):
        return False
    if isinstance(value, (Record, MessageVal, SelfVal)):
        return True
    return None


def iter_elem(value: Value) -> Value:
    elem = _elem_or_none(value)
    if elem is not None:
        return elem.with_taint(value.taint)
    if isinstance(value, MapVal):
        return value.key.with_taint(value.taint)
    if isinstance(value, StrSet):
        return StrSet(value.taint, None)
    return Top(taint_of(value))


def _join_env(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return _merge_envs(a, b, None, both_only=False)


def _merge_envs(a, b, merge=None, both_only=False):
    out = {}
    for key in set(a) | set(b):
        va = a.get(key)
        vb = b.get(key)
        if va is None:
            out[key] = vb
        elif vb is None:
            out[key] = va
        elif merge is not None:
            out[key] = merge(va, vb)
        else:
            out[key] = join(va, vb)
    return out


# ----------------------------------------------------------------------
# Station analysis (fixpoint + recording pass)
# ----------------------------------------------------------------------


def _station_methods(model: ProgramModel) -> List[str]:
    return [
        name for name in PROTOCOL_METHODS if name in model.methods
    ]


def _records_with_tag(value: Value, tag: str) -> List[Record]:
    found: List[Record] = []
    if isinstance(value, Record):
        if value.tag == tag:
            found.append(value)
        for _, sub in value.fields:
            found.extend(_records_with_tag(sub, tag))
    elif isinstance(value, TupleVal):
        for item in value.items:
            found.extend(_records_with_tag(item, tag))
    elif isinstance(value, SeqVal):
        found.extend(_records_with_tag(value.elem, tag))
    return found


def analyze_station(audit: SourceAudit) -> AnalysisResult:
    """Fixpoint + recording pass for one station's logic."""
    cached = getattr(audit, "_dataflow_analysis", None)
    if cached is not None:
        return cached
    model = ProgramModel(audit)
    own = getattr(audit, "own_header_space", None)
    peer = getattr(audit, "peer_header_space", None)
    if own is not None and peer is not None:
        clamp = join(
            abstract_header_space(own), abstract_header_space(peer)
        )
        if isinstance(clamp, Bottom):
            clamp = TOP
    else:
        clamp = TOP
    analyzer = Analyzer(model, packet_header=clamp)
    try:
        concrete = audit.logic.initial_core()
    except Exception:
        concrete = None
    core = value_of_concrete(concrete)
    tag = core.tag if isinstance(core, Record) else ""
    methods = _station_methods(model)
    if isinstance(core, Record):
        for round_no in range(_FIXPOINT_ROUNDS):
            new = core
            for name in methods:
                frame = analyzer.run_method(name, core)
                for value in frame.returns + frame.yields:
                    for record in _records_with_tag(value, tag):
                        new = join(new, record)
            new = clamp_depth(new)
            if round_no >= _WIDEN_AFTER:
                new = widen(core, new)
            if new == core:
                break
            core = new
    analyzer.recording = True
    for name in methods:
        analyzer.run_method(name, core)
    result = AnalysisResult(
        audit=audit,
        core=core,
        header_sites=analyzer.header_sites,
        branch_sites=analyzer.branch_sites,
        methods=methods,
    )
    audit._dataflow_analysis = result  # type: ignore[attr-defined]
    return result
