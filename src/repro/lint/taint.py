"""Message-independence via interprocedural taint tracking (REP301).

REP201 flags a textual read of ``Message.ident``/``Message.label``
*inside a logic class*.  A protocol can evade it by laundering the
read through a module-level helper::

    def _priority(message):
        return message.ident % 2        # invisible to REP201

    class SneakyTransmitter(TransmitterLogic):
        def on_send_msg(self, core, message):
            if _priority(message):      # branches on payload contents
                ...

REP301 closes the gap with the dataflow engine: reads of the payload
attributes produce values tainted with their source location, the
taint propagates through assignments, returns, containers and
intra-module helper calls, and any *decision site* observing a tainted
value -- an ``if``/``while``/ternary/comprehension condition or a
``Packet`` header -- breaks the §5.3.1 message-independence
hypothesis.  (``Message.size`` is the sanctioned §9 content channel
and stays untainted.)

When REP201 already fired on a station the same defect would be
reported twice, so REP301 stays silent there -- the two rules
partition the evidence: direct reads go to REP201, laundered flows to
REP301.
"""

from __future__ import annotations

from typing import List

from .dataflow import Site, analyze_station, taint_of
from .registry import RULES, rule
from .source import SourceAudit


def tainted_decision_sites(audit: SourceAudit) -> List[Site]:
    """Decision sites observing message-payload taint, in file order."""
    analysis = analyze_station(audit)
    sites = [
        site for site in analysis.branch_sites if site.msg_taints
    ] + [
        site
        for site in analysis.header_sites
        if any(t and t[0] == "msg" for t in taint_of(site.value))
    ]
    seen = set()
    unique: List[Site] = []
    for site in sorted(sites, key=lambda s: (s.file, s.line, s.kind)):
        key = (site.file, site.line, site.kind)
        if key not in seen:
            seen.add(key)
            unique.append(site)
    return unique


def _rep201_fired(audit: SourceAudit) -> bool:
    checker = RULES["REP201"].checker
    return any(True for _ in checker(audit))


def message_independent(audit: SourceAudit) -> bool:
    """True iff no payload taint reaches a decision site (and no
    direct payload read exists)."""
    if _rep201_fired(audit):
        return False
    try:
        return not tainted_decision_sites(audit)
    except Exception:
        return False  # unverified counts as not proven independent


@rule(
    "REP301",
    "message-dependence-flow",
    "§5.3.1",
    "message payloads must not flow into branch or header decisions",
    family="deep",
)
def check_message_taint(deep):
    """Flag laundered payload-to-decision flows."""
    for audit in deep.audits:
        if _rep201_fired(audit):
            continue  # direct reads already reported by REP201
        try:
            sites = tainted_decision_sites(audit)
        except Exception:
            continue  # engine failure: REP302 surfaces analysis errors
        for site in sites:
            sources = ", ".join(
                f"Message.{attr} read at line {line}"
                for (_, _file, line, attr) in site.msg_taints
            )
            what = (
                "a branch condition"
                if site.kind == "branch"
                else "a Packet header"
            )
            yield {
                "message": (
                    f"{audit.station} logic of {audit.target} lets "
                    f"message payload contents flow into {what} "
                    f"({sources}): message-independent protocols must "
                    f"treat messages as opaque tokens even through "
                    f"helper functions"
                ),
                "file": site.file,
                "line": site.line,
            }
