"""The lint-rule registry.

Every rule registers itself with :func:`rule`, carrying a stable code, a
kebab-case name, the paper section whose hypothesis it audits, and a
checker callable.  The driver never enumerates rules by hand -- later
PRs add rules by decorating a checker, without touching the driver.

Rule families
-------------

``build``
    Runs when constructing a lint target raises
    :class:`~repro.ioa.signature.SignatureError`.  Checker signature:
    ``checker(target, error) -> iterable of raw findings``.
``semantic``
    Runs on an :class:`~repro.lint.semantic.ExploredModel` built from a
    successfully constructed target (bounded exploration via the PR-1
    engine).  Checker signature: ``checker(model) -> ...``.
``source``
    AST audits of a protocol's logic classes.  Checker signature:
    ``checker(audit) -> ...`` with a :class:`~repro.lint.source.SourceAudit`.

``deep``
    Interprocedural dataflow analyses (REP3xx) plus the theorem
    contradiction gate, run only under ``repro lint --deep-source``.
    Checker signature: ``checker(deep) -> ...`` with a
    :class:`~repro.lint.driver.DeepAudit` (both stations' audits,
    parsed claims, recorded fuzz evidence).

Raw findings are dicts with ``message``, ``file`` and ``line`` keys; the
driver completes them into :class:`~repro.lint.diagnostics.Diagnostic`
objects using the rule's metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .diagnostics import SEVERITIES

FAMILIES = ("build", "semantic", "source", "deep")


@dataclass(frozen=True)
class LintRule:
    """Metadata + checker for one lint code."""

    code: str
    name: str
    paper: str
    summary: str
    family: str
    severity: str
    checker: Callable


#: code -> rule, in registration (= code) order.
RULES: Dict[str, LintRule] = {}


def rule(
    code: str,
    name: str,
    paper: str,
    summary: str,
    family: str,
    severity: str = "error",
) -> Callable:
    """Class decorator registering a checker callable under ``code``."""
    if family not in FAMILIES:
        raise ValueError(f"unknown rule family {family!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(checker: Callable) -> Callable:
        if code in RULES:
            raise ValueError(f"duplicate lint code {code}")
        RULES[code] = LintRule(
            code, name, paper, summary, family, severity, checker
        )
        return checker

    return register


def rules_for(family: str) -> List[LintRule]:
    return [r for r in RULES.values() if r.family == family]
