"""AST-based source audits on protocol logic classes (REP20x).

These rules are *static over-approximations* of the paper's structural
hypotheses, complementing the empirical checkers:

* REP201 (message-independence, §5.3.1) flags reads of ``Message``
  payload attributes (``.ident``, ``.label``) and ``Message(...)``
  construction inside protocol logic.  Opaque-token operations --
  storing, forwarding, equality/membership tests -- commute with
  message renamings and are allowed; ``.size`` is the sanctioned §9
  content channel and is allowed too.
* REP202 (crashing, §5.3.2/§7) inspects ``on_crash`` overrides: a
  protocol declaring ``crash_resilient=False`` must reset to the
  initial core, so any unguarded ``return`` of something other than
  ``self.initial_core()`` is flagged.  Returns dominated by an ``if``
  testing a ``self.<flag>`` are exempt: that is the construction-time
  mode-switch idiom (one logic class serving volatile and non-volatile
  variants).  Conversely ``crash_resilient=True`` with no override at
  all is flagged -- the inherited default loses everything.
* REP203 (bounded headers, §8) flags arithmetic (``+ - * ** <<``) in
  the header expression of a ``Packet(...)`` construction when the
  logic declares a *finite* header space, unless the arithmetic is
  reduced by ``%`` or delegated to a helper call -- unreduced counter
  arithmetic is how headers escape a declared finite space.

Only the classes a protocol actually instantiates are audited (walking
each logic object's MRO, skipping framework base classes), so strawman
classes sharing a module with clean protocols do not pollute them.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..datalink.protocol import DataLinkProtocol, ProtocolLogic
from .registry import rule

#: Message payload attributes a message-independent protocol must not
#: read.  ``size`` is deliberately absent (the §9 extension).
MESSAGE_ATTRS = ("ident", "label")

#: Arithmetic operators that can grow a header without bound.
_GROWTH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.LShift)


@dataclass
class ClassSource:
    """Parsed source of one audited logic class."""

    cls: type
    file: str
    line: int  # 1-based line of the class definition in ``file``
    tree: ast.Module

    def absolute_line(self, node: ast.AST) -> int:
        """Map a node's line (relative to the class source) to the file."""
        return self.line + getattr(node, "lineno", 1) - 1


@dataclass
class SourceAudit:
    """Everything the source rules need about one station's logic."""

    target: str
    station: str  # "transmitter" or "receiver"
    logic: ProtocolLogic
    classes: List[ClassSource] = field(default_factory=list)
    bounded_headers: bool = False
    crash_resilient: bool = False
    #: The station's declared ``header_space()`` (None when unbounded),
    #: and the peer station's -- the deep analyses clamp incoming
    #: packet headers to their union (see :mod:`repro.lint.dataflow`).
    own_header_space: Optional[frozenset] = None
    peer_header_space: Optional[frozenset] = None


def _is_framework_class(cls: type) -> bool:
    module = getattr(cls, "__module__", "")
    root = module.split(".")[0]
    if root in ("abc", "builtins"):
        return True
    return module.startswith("repro.datalink") or module.startswith(
        "repro.ioa"
    )


def class_sources(logic: ProtocolLogic) -> List[ClassSource]:
    """Parsed sources of the logic's own classes, in MRO order."""
    sources: List[ClassSource] = []
    for cls in type(logic).__mro__:
        if cls is object or _is_framework_class(cls):
            continue
        try:
            text = textwrap.dedent(inspect.getsource(cls))
            file = inspect.getsourcefile(cls) or "<unknown>"
            _, line = inspect.getsourcelines(cls)
            tree = ast.parse(text)
        except (OSError, TypeError, SyntaxError):
            continue
        sources.append(ClassSource(cls, file, line, tree))
    return sources


def build_source_audits(protocol: DataLinkProtocol) -> List[SourceAudit]:
    stations = (
        ("transmitter", protocol.transmitter_factory()),
        ("receiver", protocol.receiver_factory()),
    )
    spaces = []
    for _, logic in stations:
        try:
            spaces.append(logic.header_space())
        except Exception:
            spaces.append(None)
    audits: List[SourceAudit] = []
    for (station, logic), space, peer_space in zip(
        stations, spaces, reversed(spaces)
    ):
        audits.append(
            SourceAudit(
                target=protocol.name,
                station=station,
                logic=logic,
                classes=class_sources(logic),
                bounded_headers=space is not None,
                crash_resilient=protocol.crash_resilient,
                own_header_space=space,
                peer_header_space=peer_space,
            )
        )
    return audits


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _reads_self(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            return True
    return False


def _class_methods(
    tree: ast.Module, name: str
) -> Iterator[ast.FunctionDef]:
    """Top-level methods named ``name`` in the (single) class of ``tree``."""
    for statement in tree.body:
        if isinstance(statement, ast.ClassDef):
            for item in statement.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == name
                ):
                    yield item


# ----------------------------------------------------------------------
# REP201: message introspection
# ----------------------------------------------------------------------


@rule(
    "REP201",
    "message-introspection",
    "§5.3.1",
    "protocol logic must treat Message payloads as opaque tokens",
    family="source",
)
def check_message_introspection(audit):
    for source in audit.classes:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in MESSAGE_ATTRS
            ):
                yield {
                    "message": (
                        f"{audit.station} logic "
                        f"{source.cls.__name__} reads "
                        f"Message.{node.attr}: message-independent "
                        f"protocols must not branch on message contents"
                    ),
                    "file": source.file,
                    "line": source.absolute_line(node),
                }
            elif (
                isinstance(node, ast.Call)
                and _call_name(node) == "Message"
            ):
                yield {
                    "message": (
                        f"{audit.station} logic "
                        f"{source.cls.__name__} constructs a Message: "
                        f"protocols may only carry messages received "
                        f"from the environment, never invent them"
                    ),
                    "file": source.file,
                    "line": source.absolute_line(node),
                }


# ----------------------------------------------------------------------
# REP202: crashing claim vs on_crash
# ----------------------------------------------------------------------


def _is_initial_core_call(node: Optional[ast.AST]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "initial_core"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "self"
    )


def _guarded_by_mode_flag(
    node: ast.AST,
    parents: Dict[ast.AST, ast.AST],
    function: ast.FunctionDef,
) -> bool:
    cursor = node
    while cursor is not function:
        cursor = parents.get(cursor)
        if cursor is None:
            return False
        if isinstance(cursor, ast.If) and _reads_self(cursor.test):
            return True
    return False


def _effective_on_crash(
    audit,
) -> Optional[Tuple[ClassSource, ast.FunctionDef]]:
    for source in audit.classes:  # MRO order: first override wins
        for function in _class_methods(source.tree, "on_crash"):
            return source, function
    return None


@rule(
    "REP202",
    "stable-storage-in-crashing-protocol",
    "§5.3.2/§7",
    "a crashing protocol's on_crash must lose all state",
    family="source",
)
def check_crashing_claim(audit):
    override = _effective_on_crash(audit)
    if audit.crash_resilient:
        if override is None and audit.classes:
            source = audit.classes[0]
            yield {
                "message": (
                    f"{audit.station} logic {source.cls.__name__} is "
                    f"declared crash_resilient=True but does not "
                    f"override on_crash; the inherited default loses "
                    f"all state, contradicting the claim"
                ),
                "file": source.file,
                "line": source.line,
            }
        return
    if override is None:
        return
    source, function = override
    parents = _parent_map(source.tree)
    for node in ast.walk(function):
        if not isinstance(node, ast.Return):
            continue
        if _is_initial_core_call(node.value):
            continue
        if _guarded_by_mode_flag(node, parents, function):
            continue
        yield {
            "message": (
                f"{audit.station} logic {source.cls.__name__} "
                f"overrides on_crash with an unguarded return that is "
                f"not self.initial_core(): state surviving a crash "
                f"contradicts crash_resilient=False (the paper's "
                f"crashing hypothesis)"
            ),
            "file": source.file,
            "line": source.absolute_line(node),
        }
        break


# ----------------------------------------------------------------------
# REP203: unbounded header construction
# ----------------------------------------------------------------------


def _interval_proven_sites(audit):
    """Packet sites the interval analysis proved within the declared
    header space (lazy import: :mod:`.intervals` builds on this module).

    Failing open -- an analysis error leaves the heuristic fully armed.
    """
    try:
        from .intervals import proven_packet_lines

        return proven_packet_lines(audit)
    except Exception:
        return frozenset()


def _header_expression(call: ast.Call) -> Optional[ast.AST]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "header":
            return keyword.value
    return None


def _reduced_or_delegated(
    node: ast.AST,
    parents: Dict[ast.AST, ast.AST],
    header: ast.AST,
) -> bool:
    """True if arithmetic is under a ``%`` or inside a helper call."""
    cursor = node
    while cursor is not header:
        cursor = parents.get(cursor)
        if cursor is None:
            return False
        if isinstance(cursor, ast.BinOp) and isinstance(cursor.op, ast.Mod):
            return True
        if isinstance(cursor, ast.Call):
            return True
    return False


@rule(
    "REP203",
    "unbounded-header-construction",
    "§8",
    "bounded-header protocols must not grow headers arithmetically",
    family="source",
)
def check_unbounded_headers(audit):
    if not audit.bounded_headers:
        return
    proven = _interval_proven_sites(audit)
    for source in audit.classes:
        parents = _parent_map(source.tree)
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and _call_name(node) == "Packet"
            ):
                continue
            header = _header_expression(node)
            if header is None:
                continue
            if (source.file, source.absolute_line(node)) in proven:
                # The interval analysis (REP302 machinery) proved this
                # site stays inside the declared space -- e.g. bounded
                # modular arithmetic like ``seq % 2 + 1`` -- so the
                # syntactic heuristic stands down.
                continue
            for sub in ast.walk(header):
                if isinstance(sub, ast.BinOp) and isinstance(
                    sub.op, _GROWTH_OPS
                ):
                    if _reduced_or_delegated(sub, parents, header):
                        continue
                    yield {
                        "message": (
                            f"{audit.station} logic "
                            f"{source.cls.__name__} builds a Packet "
                            f"header with unreduced arithmetic while "
                            f"declaring a finite header_space(): "
                            f"headers can escape the declared bound"
                        ),
                        "file": source.file,
                        "line": source.absolute_line(sub),
                    }
