"""Declared claims, crash escape analysis, and the contradiction gate.

This module hosts the last two deep rules:

* **REP303** infers the paper's *crashing* hypothesis (§5.3.2/§7) by
  escape analysis: ``on_crash`` is interpreted with every core field
  tainted by its own name, construction-time mode flags resolved
  against the live logic instance (so ``if self.nonvolatile:`` prunes
  exactly), and a field whose post-crash value still carries core
  taint *survives* the crash.  A surviving field that other methods
  read is stable storage; declaring ``crash_resilient=False`` while
  keeping stable storage is flagged.
* **REP304** is the theorem contradiction gate.  Each protocol may
  declare a ``claims`` dict; the gate cross-checks the claims against
  the protocol's metadata, the properties *inferred* by REP301-REP303,
  the combinations forbidden outright by Theorem 7.5 (no crashing
  message-independent protocol tolerates crashes) and Theorem 8.5 (no
  message-independent bounded-header k-bounded protocol is weakly
  correct over non-FIFO channels), and any recorded fuzz evidence
  (a crash-free violation over a channel class the protocol claims to
  be weakly correct over is a definitive refutation; a *clean* fuzz
  run proves nothing and is never used as positive evidence).

Claims are plain dicts on :class:`DataLinkProtocol` so protocol
modules never import the lint package::

    claims={
        "message_independent": True,
        "bounded_headers": True,
        "crashing": True,
        "k_bounded": 1,
        "weakly_correct_over": ("fifo",),
        "tolerates_crashes": False,
        "self_stabilizing": False,
    }
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .dataflow import (
    Analyzer,
    ProgramModel,
    Record,
    SourceAudit,
    taint_of,
    value_of_concrete,
)
from .intervals import header_report
from .registry import RULES, rule
from .source import _effective_on_crash
from .taint import message_independent

#: Channel classes a protocol may claim weak correctness over.
CHANNEL_CLASSES = ("fifo", "nonfifo")

_CLAIM_KEYS = {
    "message_independent",
    "bounded_headers",
    "crashing",
    "k_bounded",
    "weakly_correct_over",
    "tolerates_crashes",
    "self_stabilizing",
}


@dataclass(frozen=True)
class ProtocolClaims:
    """Validated per-protocol hypothesis declarations."""

    message_independent: Optional[bool] = None
    bounded_headers: Optional[bool] = None
    crashing: Optional[bool] = None
    k_bounded: Optional[int] = None
    weakly_correct_over: Tuple[str, ...] = ()
    tolerates_crashes: bool = False
    self_stabilizing: Optional[bool] = None

    def to_dict(self) -> Dict:
        return {
            "message_independent": self.message_independent,
            "bounded_headers": self.bounded_headers,
            "crashing": self.crashing,
            "k_bounded": self.k_bounded,
            "weakly_correct_over": list(self.weakly_correct_over),
            "tolerates_crashes": self.tolerates_crashes,
            "self_stabilizing": self.self_stabilizing,
        }


class ClaimError(ValueError):
    """A malformed ``claims`` declaration."""


def parse_claims(raw) -> Optional[ProtocolClaims]:
    """Validate a protocol's ``claims`` dict (None passes through)."""
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ClaimError(f"claims must be a dict, got {type(raw).__name__}")
    unknown = set(raw) - _CLAIM_KEYS
    if unknown:
        raise ClaimError(
            f"unknown claim keys: {', '.join(sorted(unknown))}"
        )
    for key in ("message_independent", "bounded_headers", "crashing"):
        if key in raw and not isinstance(raw[key], bool):
            raise ClaimError(f"claim {key!r} must be a bool")
    k = raw.get("k_bounded")
    if k is not None and (not isinstance(k, int) or k < 1):
        raise ClaimError("claim 'k_bounded' must be a positive int")
    wco = tuple(raw.get("weakly_correct_over", ()))
    bad = [c for c in wco if c not in CHANNEL_CLASSES]
    if bad:
        raise ClaimError(
            f"claim 'weakly_correct_over' entries must be in "
            f"{CHANNEL_CLASSES}, got {bad}"
        )
    tolerates = raw.get("tolerates_crashes", False)
    if not isinstance(tolerates, bool):
        raise ClaimError("claim 'tolerates_crashes' must be a bool")
    stab = raw.get("self_stabilizing")
    if stab is not None and not isinstance(stab, bool):
        raise ClaimError("claim 'self_stabilizing' must be a bool")
    return ProtocolClaims(
        message_independent=raw.get("message_independent"),
        bounded_headers=raw.get("bounded_headers"),
        crashing=raw.get("crashing"),
        k_bounded=k,
        weakly_correct_over=wco,
        tolerates_crashes=tolerates,
        self_stabilizing=stab,
    )


# ----------------------------------------------------------------------
# Crash escape analysis
# ----------------------------------------------------------------------


@dataclass
class CrashReport:
    """What survives ``on_crash`` for one station.

    ``survivors`` is ``None`` when the analysis could not resolve the
    post-crash state (unverified), otherwise the set of core fields
    whose post-crash value still depends on the pre-crash core.
    """

    audit: SourceAudit
    survivors: Optional[Set[str]]
    relevant: Set[str]

    @property
    def stable_fields(self) -> Set[str]:
        if self.survivors is None:
            return set()
        return self.survivors & self.relevant

    @property
    def crashing(self) -> bool:
        """Proven to lose all observable state on crash (§5.3.2)."""
        return self.survivors is not None and not self.stable_fields


def _core_field_names(audit: SourceAudit) -> List[str]:
    try:
        core = value_of_concrete(audit.logic.initial_core())
    except Exception:
        return []
    if not isinstance(core, Record):
        return []
    return [name for name, _ in core.fields]


def _relevant_fields(model: ProgramModel, names: List[str]) -> Set[str]:
    """Core fields read (as ``<var>.<field>``) outside on_crash."""
    relevant: Set[str] = set()
    infos = [
        info
        for name, info in model.methods.items()
        if name not in ("on_crash", "initial_core")
    ] + list(model.helpers.values())
    for info in infos:
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in names
                and isinstance(node.value, ast.Name)
                and node.value.id != "self"
            ):
                relevant.add(node.attr)
    return relevant


def crash_report(audit: SourceAudit) -> CrashReport:
    """Escape-analyze (and cache) one station's ``on_crash``."""
    cached = getattr(audit, "_crash_report", None)
    if cached is not None:
        return cached
    names = _core_field_names(audit)
    model = ProgramModel(audit)
    relevant = _relevant_fields(model, names)
    if "on_crash" not in model.methods:
        # The inherited default resets to initial_core(): crashing.
        report = CrashReport(audit, set(), relevant)
        audit._crash_report = report  # type: ignore[attr-defined]
        return report
    try:
        seeded_core = value_of_concrete(audit.logic.initial_core())
        assert isinstance(seeded_core, Record)
        seeded = Record(
            seeded_core.taint,
            seeded_core.tag,
            tuple(
                (
                    name,
                    value.with_taint(frozenset([("core", name)])),
                )
                for name, value in seeded_core.fields
            ),
        )
        analyzer = Analyzer(model)
        frame = analyzer.run_method("on_crash", seeded)
        survivors: Optional[Set[str]] = set()
        for returned in frame.returns:
            if (
                isinstance(returned, Record)
                and returned.tag == seeded.tag
            ):
                for name, value in returned.fields:
                    if any(
                        t and t[0] == "core" for t in taint_of(value)
                    ):
                        survivors.add(name)
            else:
                survivors = None  # post-crash state unresolved
                break
        report = CrashReport(audit, survivors, relevant)
    except Exception:
        report = CrashReport(audit, None, relevant)
    audit._crash_report = report  # type: ignore[attr-defined]
    return report


def _rep202_fired(audit: SourceAudit) -> bool:
    checker = RULES["REP202"].checker
    return any(True for _ in checker(audit))


@rule(
    "REP303",
    "stable-storage-escape",
    "§5.3.2/§7",
    "state escaping on_crash is stable storage and must be declared",
    family="deep",
)
def check_crash_escape(deep):
    """Flag undeclared stable storage surviving ``on_crash``."""
    for audit in deep.audits:
        if audit.crash_resilient:
            continue  # stable storage is declared; REP202 audits it
        if _rep202_fired(audit):
            continue  # the syntactic rule already reported this station
        report = crash_report(audit)
        override = _effective_on_crash(audit)
        if override is None:
            continue
        source, function = override
        location = {
            "file": source.file,
            "line": source.absolute_line(function),
        }
        if report.survivors is None:
            yield {
                "message": (
                    f"{audit.station} logic of {audit.target} overrides "
                    f"on_crash but the escape analysis could not "
                    f"resolve the post-crash state; the crashing "
                    f"hypothesis (crash_resilient=False) is unverified"
                ),
                **location,
            }
            continue
        for field in sorted(report.stable_fields):
            yield {
                "message": (
                    f"{audit.station} logic of {audit.target} keeps "
                    f"core field {field!r} across on_crash and reads "
                    f"it after recovery: that is stable storage, "
                    f"contradicting crash_resilient=False (the §5.3.2 "
                    f"crashing hypothesis behind Theorem 7.5)"
                ),
                **location,
            }


# ----------------------------------------------------------------------
# Inferred verdicts
# ----------------------------------------------------------------------


def station_verdict(audit: SourceAudit) -> Dict:
    """Inferred per-station properties (all proofs, not declarations)."""
    headers = header_report(audit)
    crash = crash_report(audit)
    return {
        "station": audit.station,
        "message_independent": message_independent(audit),
        "bounded_headers_declared": headers.declared,
        "bounded_headers_proven": headers.proven,
        "header_sites": len(headers.sites),
        "crashing": crash.crashing,
        "stable_fields": sorted(crash.stable_fields),
    }


def build_verdict(deep) -> Dict:
    """The JSON verdict row for one protocol (inferred + declared)."""
    stations = [station_verdict(audit) for audit in deep.audits]
    inferred = {
        "message_independent": all(
            s["message_independent"] for s in stations
        ),
        "bounded_headers": all(
            s["bounded_headers_proven"] for s in stations
        ),
        "crashing": all(s["crashing"] for s in stations),
    }
    claims = None
    if deep.claims is not None:
        claims = deep.claims.to_dict()
    return {
        "target": deep.name,
        "inferred": inferred,
        "stations": stations,
        "claims": claims,
        "evidence_records": len(deep.evidence),
    }


# ----------------------------------------------------------------------
# REP304: the contradiction gate
# ----------------------------------------------------------------------


def _violated(record) -> bool:
    violations = getattr(record, "violations", 0)
    try:
        return bool(violations)
    except Exception:
        return False


@rule(
    "REP304",
    "theorem-contradiction",
    "§7.5/§8.5",
    "claims must be consistent with the theorems, the analyses, and evidence",
    family="deep",
)
def check_contradictions(deep):
    """Cross-check declared claims against theory, inference, evidence."""
    location = {"file": deep.file, "line": deep.line}
    if deep.claims_error is not None:
        yield {
            "message": (
                f"{deep.name} declares malformed claims: "
                f"{deep.claims_error}"
            ),
            **location,
        }
        return
    claims = deep.claims
    if claims is None:
        return
    protocol = deep.protocol
    stations = [station_verdict(audit) for audit in deep.audits]
    inferred_mi = all(s["message_independent"] for s in stations)
    inferred_crashing = all(s["crashing"] for s in stations)
    declared_bounded = protocol.has_bounded_headers()

    # (a) internal consistency with the protocol's own metadata
    if (
        claims.crashing is not None
        and claims.crashing != (not protocol.crash_resilient)
    ):
        yield {
            "message": (
                f"{deep.name} claims crashing="
                f"{claims.crashing} but declares crash_resilient="
                f"{protocol.crash_resilient}; the two metadata "
                f"channels contradict each other"
            ),
            **location,
        }
    if (
        claims.bounded_headers is not None
        and claims.bounded_headers != declared_bounded
    ):
        yield {
            "message": (
                f"{deep.name} claims bounded_headers="
                f"{claims.bounded_headers} but header_space() is "
                f"{'finite' if declared_bounded else 'unbounded'}"
            ),
            **location,
        }

    # (b) claims contradicted by the static analyses
    if claims.message_independent and not inferred_mi:
        yield {
            "message": (
                f"{deep.name} claims message independence but the "
                f"taint analysis (REP301/REP201) found payload "
                f"dependence"
            ),
            **location,
        }
    if claims.crashing and not inferred_crashing:
        yield {
            "message": (
                f"{deep.name} claims to be crashing but the escape "
                f"analysis found state surviving on_crash"
            ),
            **location,
        }

    # (c) Theorem 7.5: crashing + message-independent protocols cannot
    # tolerate crashes over FIFO physical channels.
    if (
        claims.tolerates_crashes
        and claims.crashing
        and claims.message_independent
    ):
        yield {
            "message": (
                f"{deep.name} claims a crashing, message-independent "
                f"protocol that tolerates crashes: forbidden by "
                f"Theorem 7.5 (no such protocol is weakly correct "
                f"under crashes, even over FIFO channels)"
            ),
            **location,
        }

    # (d) Theorem 8.5: message-independent + bounded headers +
    # k-bounded cannot be weakly correct over non-FIFO channels.
    if (
        claims.message_independent
        and claims.bounded_headers
        and claims.k_bounded is not None
        and "nonfifo" in claims.weakly_correct_over
    ):
        yield {
            "message": (
                f"{deep.name} claims a message-independent, "
                f"bounded-header, {claims.k_bounded}-bounded protocol "
                f"weakly correct over non-FIFO channels: forbidden by "
                f"Theorem 8.5"
            ),
            **location,
        }

    # (e) recorded runtime evidence: a violation is definitive, a
    # clean campaign proves nothing.
    for record in deep.evidence:
        if not _violated(record):
            continue
        channel = getattr(record, "channel", None)
        crashes = bool(getattr(record, "crashes", False))
        oracles = ", ".join(getattr(record, "violated_oracles", ()) or ())
        init_mode = getattr(record, "init_mode", "clean")
        if init_mode == "arbitrary":
            # A corrupted-start campaign exercises self-stabilization,
            # not clean-start weak correctness; its violations refute
            # only the self_stabilizing claim.
            if not crashes and claims.self_stabilizing:
                yield {
                    "message": (
                        f"{deep.name} claims to be self-stabilizing "
                        f"but a recorded crash-free arbitrary-"
                        f"initial-state fuzz campaign (seed "
                        f"{getattr(record, 'seed', '?')}) violated "
                        f"{oracles or 'its stabilization oracles'}: "
                        f"the claim is refuted by runtime evidence"
                    ),
                    **location,
                }
            continue
        if not crashes and channel in claims.weakly_correct_over:
            yield {
                "message": (
                    f"{deep.name} claims weak correctness over "
                    f"{channel} channels but a recorded crash-free "
                    f"fuzz campaign (seed "
                    f"{getattr(record, 'seed', '?')}) violated "
                    f"{oracles or 'its oracles'}: the claim is "
                    f"refuted by runtime evidence"
                ),
                **location,
            }
        if (
            crashes
            and claims.tolerates_crashes
            and channel in claims.weakly_correct_over
        ):
            yield {
                "message": (
                    f"{deep.name} claims to tolerate crashes over "
                    f"{channel} channels but a recorded crash fuzz "
                    f"campaign (seed {getattr(record, 'seed', '?')}) "
                    f"violated {oracles or 'its oracles'}"
                ),
                **location,
            }
