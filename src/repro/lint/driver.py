"""The lint driver: normalize targets, run rule families, build reports.

A lint *target* is anything that can be audited:

* a :class:`~repro.datalink.protocol.DataLinkProtocol` (the usual case;
  gets the full semantic sweep plus the source audits),
* a bare :class:`~repro.ioa.automaton.Automaton`, optionally with an
  input environment (semantic sweep only), or
* a zero-argument callable returning either of the above.  Factories
  let build-time failures (REP101/REP102) be audited: the driver calls
  the factory and converts a raised ``SignatureError`` into the
  matching build-phase diagnostic instead of crashing.

``zoo_targets`` wraps the CLI protocol registry so ``python -m repro
lint`` audits the whole zoo by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..datalink.protocol import DataLinkProtocol
from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State
from ..ioa.signature import SignatureError
from .diagnostics import Diagnostic, LintReport
from .registry import LintRule, rules_for
from .semantic import (
    build_automaton_model,
    build_protocol_model,
    callable_location,
    class_location,
)
from .source import build_source_audits

Environment = Optional[Callable[[State], Iterable[Action]]]


@dataclass
class LintTarget:
    """A named, lazily-built audit subject."""

    name: str
    build: Callable[[], object]
    environment: Environment = None
    file: str = "<unknown>"
    line: int = 0


def target_from(
    obj: object,
    name: Optional[str] = None,
    environment: Environment = None,
) -> LintTarget:
    """Normalize a protocol / automaton / factory into a LintTarget."""
    if isinstance(obj, LintTarget):
        return obj
    if isinstance(obj, DataLinkProtocol):
        file, line = callable_location(obj.transmitter_factory)
        return LintTarget(name or obj.name, lambda: obj, None, file, line)
    if isinstance(obj, Automaton):
        file, line = class_location(type(obj))
        return LintTarget(
            name or obj.name, lambda: obj, environment, file, line
        )
    if callable(obj):
        file, line = callable_location(obj)
        return LintTarget(
            name or getattr(obj, "__name__", "target"),
            obj,
            environment,
            file,
            line,
        )
    raise TypeError(
        f"cannot lint {obj!r}: expected a DataLinkProtocol, an "
        f"Automaton, or a factory callable"
    )


def zoo_targets() -> List[LintTarget]:
    """One target per protocol in the CLI registry (the protocol zoo)."""
    from ..cli import REGISTRY  # lazy: the CLI imports are heavy

    return [
        target_from(REGISTRY[name](None), name=name)
        for name in sorted(REGISTRY)
    ]


def _finish(rule: LintRule, target_name: str, raw: dict) -> Diagnostic:
    return Diagnostic(
        code=rule.code,
        severity=rule.severity,
        target=target_name,
        message=raw["message"],
        file=raw.get("file", "<unknown>"),
        line=raw.get("line", 0),
        paper=rule.paper,
    )


def lint_one(
    target: LintTarget,
    messages: int = 2,
    max_states: int = 2000,
    max_depth: int = 50,
) -> List[Diagnostic]:
    """All diagnostics for one target, in rule-registration order."""
    try:
        built = target.build()
    except SignatureError as error:
        return [
            _finish(rule, target.name, raw)
            for rule in rules_for("build")
            for raw in rule.checker(target, error)
        ]

    if isinstance(built, DataLinkProtocol):
        try:
            model = build_protocol_model(
                built,
                messages=messages,
                max_states=max_states,
                max_depth=max_depth,
            )
        except SignatureError as error:
            return [
                _finish(rule, target.name, raw)
                for rule in rules_for("build")
                for raw in rule.checker(target, error)
            ]
        audits = build_source_audits(built)
    elif isinstance(built, Automaton):
        model = build_automaton_model(
            built,
            environment=target.environment,
            max_states=max_states,
            max_depth=max_depth,
        )
        audits = []
    else:
        raise TypeError(
            f"lint target {target.name!r} built {built!r}; expected a "
            f"DataLinkProtocol or an Automaton"
        )

    diagnostics: List[Diagnostic] = []
    for rule in rules_for("semantic"):
        diagnostics.extend(
            _finish(rule, target.name, raw) for raw in rule.checker(model)
        )
    for audit in audits:
        for rule in rules_for("source"):
            diagnostics.extend(
                _finish(rule, target.name, raw)
                for raw in rule.checker(audit)
            )
    return diagnostics


def lint_targets(
    targets: Iterable[object],
    messages: int = 2,
    max_states: int = 2000,
    max_depth: int = 50,
) -> LintReport:
    """Lint every target and collect one report."""
    normalized = [target_from(t) for t in targets]
    diagnostics: List[Diagnostic] = []
    for target in normalized:
        diagnostics.extend(
            lint_one(
                target,
                messages=messages,
                max_states=max_states,
                max_depth=max_depth,
            )
        )
    return LintReport(diagnostics, [t.name for t in normalized])
