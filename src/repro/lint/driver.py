"""The lint driver: normalize targets, run rule families, build reports.

A lint *target* is anything that can be audited:

* a :class:`~repro.datalink.protocol.DataLinkProtocol` (the usual case;
  gets the full semantic sweep plus the source audits),
* a bare :class:`~repro.ioa.automaton.Automaton`, optionally with an
  input environment (semantic sweep only), or
* a zero-argument callable returning either of the above.  Factories
  let build-time failures (REP101/REP102) be audited: the driver calls
  the factory and converts a raised ``SignatureError`` into the
  matching build-phase diagnostic instead of crashing.

``zoo_targets`` wraps the CLI protocol registry so ``python -m repro
lint`` audits the whole zoo by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..datalink.protocol import DataLinkProtocol
from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State
from ..ioa.signature import SignatureError
from .diagnostics import Diagnostic, LintReport
from .registry import LintRule, rules_for
from .semantic import (
    build_automaton_model,
    build_protocol_model,
    callable_location,
    class_location,
)
from .source import SourceAudit, build_source_audits

Environment = Optional[Callable[[State], Iterable[Action]]]


@dataclass
class DeepAudit:
    """Input to the ``deep`` rule family for one protocol target.

    Bundles both stations' source audits with the protocol's parsed
    claims (or the parse error) and any recorded fuzz evidence whose
    protocol name matches the target.
    """

    protocol: DataLinkProtocol
    name: str
    file: str
    line: int
    audits: List[SourceAudit]
    claims: Optional[object] = None
    claims_error: Optional[str] = None
    evidence: List[object] = field(default_factory=list)


@dataclass
class LintTarget:
    """A named, lazily-built audit subject."""

    name: str
    build: Callable[[], object]
    environment: Environment = None
    file: str = "<unknown>"
    line: int = 0


def target_from(
    obj: object,
    name: Optional[str] = None,
    environment: Environment = None,
) -> LintTarget:
    """Normalize a protocol / automaton / factory into a LintTarget."""
    if isinstance(obj, LintTarget):
        return obj
    if isinstance(obj, DataLinkProtocol):
        file, line = callable_location(obj.transmitter_factory)
        return LintTarget(name or obj.name, lambda: obj, None, file, line)
    if isinstance(obj, Automaton):
        file, line = class_location(type(obj))
        return LintTarget(
            name or obj.name, lambda: obj, environment, file, line
        )
    if callable(obj):
        file, line = callable_location(obj)
        return LintTarget(
            name or getattr(obj, "__name__", "target"),
            obj,
            environment,
            file,
            line,
        )
    raise TypeError(
        f"cannot lint {obj!r}: expected a DataLinkProtocol, an "
        f"Automaton, or a factory callable"
    )


def zoo_targets() -> List[LintTarget]:
    """One target per protocol in the CLI registry (the protocol zoo)."""
    from ..cli import REGISTRY  # lazy: the CLI imports are heavy

    return [
        target_from(REGISTRY[name](None), name=name)
        for name in sorted(REGISTRY)
    ]


def _finish(rule: LintRule, target_name: str, raw: dict) -> Diagnostic:
    return Diagnostic(
        code=rule.code,
        severity=rule.severity,
        target=target_name,
        message=raw["message"],
        file=raw.get("file", "<unknown>"),
        line=raw.get("line", 0),
        paper=rule.paper,
    )


def lint_one(
    target: LintTarget,
    messages: int = 2,
    max_states: int = 2000,
    max_depth: int = 50,
    deep: bool = False,
    evidence: Optional[Iterable[object]] = None,
    verdicts: Optional[List[Dict]] = None,
) -> List[Diagnostic]:
    """All diagnostics for one target, in rule-registration order.

    ``deep=True`` additionally runs the ``deep`` family (REP3xx) on
    protocol targets, filtering ``evidence`` records by protocol name
    and appending one verdict row per protocol to ``verdicts``.
    """
    try:
        built = target.build()
    except SignatureError as error:
        return [
            _finish(rule, target.name, raw)
            for rule in rules_for("build")
            for raw in rule.checker(target, error)
        ]

    if isinstance(built, DataLinkProtocol):
        try:
            model = build_protocol_model(
                built,
                messages=messages,
                max_states=max_states,
                max_depth=max_depth,
            )
        except SignatureError as error:
            return [
                _finish(rule, target.name, raw)
                for rule in rules_for("build")
                for raw in rule.checker(target, error)
            ]
        audits = build_source_audits(built)
    elif isinstance(built, Automaton):
        model = build_automaton_model(
            built,
            environment=target.environment,
            max_states=max_states,
            max_depth=max_depth,
        )
        audits = []
    else:
        raise TypeError(
            f"lint target {target.name!r} built {built!r}; expected a "
            f"DataLinkProtocol or an Automaton"
        )

    diagnostics: List[Diagnostic] = []
    for rule in rules_for("semantic"):
        diagnostics.extend(
            _finish(rule, target.name, raw) for raw in rule.checker(model)
        )
    for audit in audits:
        for rule in rules_for("source"):
            diagnostics.extend(
                _finish(rule, target.name, raw)
                for raw in rule.checker(audit)
            )
    if deep and isinstance(built, DataLinkProtocol):
        # Lazy import: the deep modules register REP301..REP304 in
        # code order via the package __init__; importing them here at
        # module scope would scramble that order.
        from .claims import ClaimError, build_verdict, parse_claims

        try:
            parsed = parse_claims(getattr(built, "claims", None))
            claims_error = None
        except ClaimError as error:
            parsed, claims_error = None, str(error)
        records = [
            record
            for record in (evidence or [])
            if getattr(record, "protocol", None) == built.name
        ]
        deep_audit = DeepAudit(
            protocol=built,
            name=target.name,
            file=target.file,
            line=target.line,
            audits=audits,
            claims=parsed,
            claims_error=claims_error,
            evidence=records,
        )
        for rule in rules_for("deep"):
            diagnostics.extend(
                _finish(rule, target.name, raw)
                for raw in rule.checker(deep_audit)
            )
        if verdicts is not None:
            verdicts.append(build_verdict(deep_audit))
    return diagnostics


def lint_targets(
    targets: Iterable[object],
    messages: int = 2,
    max_states: int = 2000,
    max_depth: int = 50,
    deep: bool = False,
    evidence: Optional[Iterable[object]] = None,
) -> LintReport:
    """Lint every target and collect one report."""
    normalized = [target_from(t) for t in targets]
    evidence = list(evidence or [])
    diagnostics: List[Diagnostic] = []
    verdicts: List[Dict] = []
    for target in normalized:
        diagnostics.extend(
            lint_one(
                target,
                messages=messages,
                max_states=max_states,
                max_depth=max_depth,
                deep=deep,
                evidence=evidence,
                verdicts=verdicts,
            )
        )
    return LintReport(
        diagnostics, [t.name for t in normalized], verdicts
    )
