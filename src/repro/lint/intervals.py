"""Bounded-header verification via interval analysis (REP302).

REP203 is a fast syntactic heuristic: *any* unreduced arithmetic in a
``Packet`` header expression is suspicious.  This module runs the real
analysis on top of :mod:`repro.lint.dataflow`: every ``Packet(...)``
construction site reachable from the protocol methods is captured with
the abstract value of its header at the stable core-field fixpoint,
and checked against the station's *declared* ``header_space()``.

The check is a product-closure membership test: a site is *covered*
when every position of its header value lies inside the projection of
the declared space onto that position.  The product of finite
projections is finite, so coverage proves the §8 bounded-header
hypothesis even when the abstraction cannot track cross-position
correlations.

Because the ``packet`` parameter of ``on_packet``/``after_send`` is
clamped to the declared spaces of both stations, coverage of every
send site is an inductive invariant: assuming peers only emit declared
headers, this station only emits declared headers.

Two consumers:

* the REP302 rule (family ``deep``) flags uncovered sites -- e.g. a
  monotone counter flowing into a header while a finite space is
  declared -- unless REP203 already flagged the same station;
* :func:`proven_packet_lines` feeds the REP203 checker so the blunt
  heuristic is suppressed exactly where the interval analysis proves
  the site finite (e.g. ``seq % 2 + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from .dataflow import (
    NEG_INF,
    POS_INF,
    Bottom,
    Interval,
    NoneVal,
    Site,
    StrSet,
    TupleVal,
    Value,
    analyze_station,
)
from .registry import RULES, rule
from .source import SourceAudit

#: Refuse to enumerate integer ranges wider than this when checking
#: membership in a declared space.
_ENUM_LIMIT = 4096


def _atom_covered(value: Value, atoms: frozenset) -> bool:
    """Is every concretization of ``value`` one of ``atoms``?"""
    if isinstance(value, Bottom):
        return True
    if isinstance(value, StrSet):
        if value.values is None:
            return False
        strings = {a for a in atoms if isinstance(a, str)}
        return value.values <= strings
    if isinstance(value, Interval):
        if value.lo in (NEG_INF, POS_INF) or value.hi in (
            NEG_INF,
            POS_INF,
        ):
            return False
        if value.hi - value.lo > _ENUM_LIMIT:
            return False
        numbers = {
            int(a)
            for a in atoms
            if isinstance(a, (int, bool)) and not isinstance(a, str)
        }
        return all(
            n in numbers
            for n in range(int(value.lo), int(value.hi) + 1)
        )
    if isinstance(value, NoneVal):
        return None in atoms
    return False


def site_covered(value: Value, space: frozenset) -> bool:
    """Product-closure membership of a header value in a space."""
    if isinstance(value, TupleVal):
        candidates = [
            h
            for h in space
            if isinstance(h, tuple) and len(h) == len(value.items)
        ]
        if not candidates:
            return False
        for position, item in enumerate(value.items):
            atoms = frozenset(h[position] for h in candidates)
            if not _atom_covered(item, atoms):
                return False
        return True
    scalars = frozenset(h for h in space if not isinstance(h, tuple))
    return _atom_covered(value, scalars)


@dataclass
class SiteVerdict:
    site: Site
    covered: bool


@dataclass
class HeaderReport:
    """Interval-analysis verdict for one station."""

    audit: SourceAudit
    declared: bool  # the station declares a finite header_space()
    sites: List[SiteVerdict]
    error: Optional[str] = None

    @property
    def proven(self) -> bool:
        """True iff bounded headers are *proven*, not just declared."""
        return (
            self.declared
            and self.error is None
            and all(verdict.covered for verdict in self.sites)
        )


def header_report(audit: SourceAudit) -> HeaderReport:
    """Analyze (and cache) the header sites of one station."""
    cached = getattr(audit, "_header_report", None)
    if cached is not None:
        return cached
    space = getattr(audit, "own_header_space", None)
    declared = audit.bounded_headers and space is not None
    try:
        analysis = analyze_station(audit)
        sites = [
            SiteVerdict(
                site,
                declared and site_covered(site.value, space),
            )
            for site in analysis.header_sites
        ]
        report = HeaderReport(audit, declared, sites)
    except Exception as error:  # analysis must never crash the lint
        report = HeaderReport(audit, declared, [], error=repr(error))
    audit._header_report = report  # type: ignore[attr-defined]
    return report


def proven_packet_lines(audit: SourceAudit) -> Set[Tuple[str, int]]:
    """(file, line) of Packet sites proven inside the declared space.

    REP203 suppresses its arithmetic heuristic at these sites.
    """
    report = header_report(audit)
    return {
        (verdict.site.file, verdict.site.line)
        for verdict in report.sites
        if verdict.covered
    }


def _rep203_fired(audit: SourceAudit) -> bool:
    checker = RULES["REP203"].checker
    return any(True for _ in checker(audit))


@rule(
    "REP302",
    "unproven-header-bound",
    "§8",
    "declared finite header spaces must be provable by interval analysis",
    family="deep",
)
def check_header_intervals(deep):
    """Flag header sites the interval analysis cannot bound."""
    for audit in deep.audits:
        if not audit.bounded_headers:
            continue  # unbounded by declaration; nothing to prove
        if _rep203_fired(audit):
            continue  # the fast heuristic already reported this station
        report = header_report(audit)
        if report.error is not None:
            yield {
                "message": (
                    f"{audit.station} logic of {audit.target} declares "
                    f"a finite header_space() but the interval "
                    f"analysis failed ({report.error}); the bound is "
                    f"unverified"
                ),
                "file": audit.classes[0].file if audit.classes else "<unknown>",
                "line": audit.classes[0].line if audit.classes else 0,
            }
            continue
        for verdict in report.sites:
            if verdict.covered:
                continue
            yield {
                "message": (
                    f"{audit.station} logic of {audit.target} builds a "
                    f"Packet whose header the interval analysis cannot "
                    f"keep inside the declared header_space(): the "
                    f"inferred value {render_value(verdict.site.value)} "
                    f"escapes the finite bound (headers(A, ==) would "
                    f"be infinite, §8)"
                ),
                "file": verdict.site.file,
                "line": verdict.site.line,
            }


def render_value(value: Value) -> str:
    """Human-readable rendering of an abstract header value."""
    if isinstance(value, Interval):
        lo = "-inf" if value.lo == NEG_INF else int(value.lo)
        hi = "+inf" if value.hi == POS_INF else int(value.hi)
        return f"[{lo}, {hi}]"
    if isinstance(value, StrSet):
        if value.values is None:
            return "str"
        return "{" + ", ".join(sorted(value.values)) + "}"
    if isinstance(value, TupleVal):
        return (
            "("
            + ", ".join(render_value(item) for item in value.items)
            + ")"
        )
    if isinstance(value, NoneVal):
        return "None"
    if isinstance(value, Bottom):
        return "unreachable"
    return type(value).__name__.replace("Val", "").lower()
