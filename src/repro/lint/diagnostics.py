"""Diagnostic objects and report rendering for ``repro lint``.

Diagnostics are ruff-style: a stable code (``REP1xx`` for semantic
audits on constructed objects, ``REP2xx`` for AST-based source audits),
a severity, a ``file:line`` location, the lint target the finding
belongs to, and the paper section whose hypothesis the rule checks.
The JSON report schema is versioned (``version``) and consumed by the
CI lint job; additions must be backward compatible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Recognized severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: JSON report schema version (bump only on incompatible changes).
REPORT_VERSION = 1


def relative_path(path: str) -> str:
    """Render ``path`` relative to the working directory when possible."""
    try:
        candidate = os.path.relpath(path)
    except ValueError:  # pragma: no cover - different drive on Windows
        return path
    return path if candidate.startswith("..") else candidate


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``file:line: CODE [target] message (paper section)``."""

    code: str
    severity: str
    target: str
    message: str
    file: str
    line: int
    paper: str

    @property
    def location(self) -> str:
        return f"{relative_path(self.file)}:{self.line}"

    def render(self) -> str:
        return (
            f"{self.location}: {self.code} [{self.target}] "
            f"{self.message} (paper {self.paper})"
        )

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "target": self.target,
            "message": self.message,
            "file": relative_path(self.file),
            "line": self.line,
            "paper": self.paper,
        }


@dataclass
class LintReport:
    """All findings of one lint run over a sequence of targets.

    ``verdicts`` carries one per-protocol property table per deep-lint
    target (``repro lint --deep-source``); it is empty otherwise.
    """

    diagnostics: List[Diagnostic]
    targets: List[str]
    verdicts: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def _with(self, diagnostics: List[Diagnostic]) -> "LintReport":
        return LintReport(
            diagnostics, list(self.targets), list(self.verdicts)
        )

    def select(self, prefixes: Sequence[str]) -> "LintReport":
        """Keep only diagnostics whose code matches a prefix (ruff-style)."""
        return self._with(
            [
                d
                for d in self.diagnostics
                if any(d.code.startswith(p) for p in prefixes)
            ]
        )

    def ignore(self, prefixes: Sequence[str]) -> "LintReport":
        """Drop diagnostics whose code matches a prefix (the counterpart
        to :meth:`select`)."""
        return self._with(
            [
                d
                for d in self.diagnostics
                if not any(d.code.startswith(p) for p in prefixes)
            ]
        )

    def apply_baseline(self, baseline: Dict) -> "LintReport":
        """Suppress findings already recorded in ``baseline``.

        ``baseline`` is a previously-written JSON report (the
        :meth:`to_dict` schema).  Findings match on ``(code, target,
        file)`` -- line numbers drift too easily to key on -- so CI can
        gate on *new* diagnostics only.
        """
        known = {
            (f.get("code"), f.get("target"), f.get("file"))
            for f in baseline.get("findings", ())
        }
        return self._with(
            [
                d
                for d in self.diagnostics
                if (d.code, d.target, relative_path(d.file)) not in known
            ]
        )

    def summary(self) -> Dict:
        by_code: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            by_code[diagnostic.code] = by_code.get(diagnostic.code, 0) + 1
            by_severity[diagnostic.severity] = (
                by_severity.get(diagnostic.severity, 0) + 1
            )
        return {
            "targets": len(self.targets),
            "findings": len(self.diagnostics),
            "by_code": dict(sorted(by_code.items())),
            "by_severity": dict(sorted(by_severity.items())),
        }

    def to_dict(self) -> Dict:
        payload = {
            "version": REPORT_VERSION,
            "tool": "repro-lint",
            "targets": list(self.targets),
            "findings": [d.to_dict() for d in self.diagnostics],
            "summary": self.summary(),
        }
        if self.verdicts:
            payload["verdicts"] = list(self.verdicts)
        return payload

    def report(self, duration_s: float = 0.0):
        """This lint run as the unified :class:`~repro.obs.RunReport`."""
        from ..obs import STATUS_FINDINGS, STATUS_OK, RunReport

        summary = self.summary()
        counters = {
            "lint.targets": summary["targets"],
            "lint.findings": summary["findings"],
        }
        for code, count in summary["by_code"].items():
            counters[f"lint.{code}"] = count
        return RunReport(
            command="lint",
            status=STATUS_OK if self.ok else STATUS_FINDINGS,
            counters=counters,
            duration_s=duration_s,
            details=self.to_dict(),
        )

    def render_verdicts(self) -> str:
        """The deep-lint verdict table: inferred §8 taxonomy per target."""
        if not self.verdicts:
            return ""
        header = f"{'target':<28} {'msg-indep':>9} {'bounded':>8} {'crashing':>9} {'claims':>7}"
        lines = [header, "-" * len(header)]
        for verdict in self.verdicts:
            inferred = verdict.get("inferred", {})
            mark = lambda flag: "yes" if flag else "NO"  # noqa: E731
            lines.append(
                f"{verdict.get('target', '?'):<28} "
                f"{mark(inferred.get('message_independent')):>9} "
                f"{mark(inferred.get('bounded_headers')):>8} "
                f"{mark(inferred.get('crashing')):>9} "
                f"{'yes' if verdict.get('claims') else '-':>7}"
            )
        return "\n".join(lines)

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        if self.verdicts:
            if lines:
                lines.append("")
            lines.append(self.render_verdicts())
        summary = self.summary()
        if self.diagnostics:
            lines.append("")
            counts = ", ".join(
                f"{count} {code}"
                for code, count in summary["by_code"].items()
            )
            lines.append(
                f"{summary['findings']} finding(s) across "
                f"{summary['targets']} target(s): {counts}"
            )
        else:
            lines.append(
                f"all clean: 0 findings across "
                f"{summary['targets']} target(s)"
            )
        return "\n".join(lines)
