"""``repro lint``: a static model-audit subsystem.

Audits the repository's I/O automata and data-link protocols against
the *structural hypotheses* of Lynch-Mansour-Fekete -- signature
well-formedness and composition compatibility (§2.1/§2.5.1),
input-enabledness and task-partition totality (§2.2), message
independence (§5.3.1), the crashing property (§5.3.2/§7), and bounded
headers (§8) -- with ruff-style diagnostics: stable codes, severities,
``file:line`` locations, text and JSON output.  Exposed on the command
line as ``python -m repro lint``.

Rules live in :mod:`.semantic` (sweeps over a bounded explored state
space) and :mod:`.source` (AST audits of protocol logic classes) and
register themselves in :mod:`.registry`; importing this package loads
both rule modules.
"""

from .diagnostics import Diagnostic, LintReport, REPORT_VERSION
from .registry import RULES, LintRule, rules_for
from .driver import (
    LintTarget,
    lint_one,
    lint_targets,
    target_from,
    zoo_targets,
)
from .semantic import (
    AutomatonModel,
    ExploredModel,
    build_automaton_model,
    build_protocol_model,
)
from .source import SourceAudit, build_source_audits, class_sources

__all__ = [
    "AutomatonModel",
    "Diagnostic",
    "ExploredModel",
    "LintReport",
    "LintRule",
    "LintTarget",
    "REPORT_VERSION",
    "RULES",
    "SourceAudit",
    "build_automaton_model",
    "build_protocol_model",
    "build_source_audits",
    "class_sources",
    "lint_one",
    "lint_targets",
    "rules_for",
    "target_from",
    "zoo_targets",
]
