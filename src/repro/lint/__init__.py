"""``repro lint``: a static model-audit subsystem.

Audits the repository's I/O automata and data-link protocols against
the *structural hypotheses* of Lynch-Mansour-Fekete -- signature
well-formedness and composition compatibility (§2.1/§2.5.1),
input-enabledness and task-partition totality (§2.2), message
independence (§5.3.1), the crashing property (§5.3.2/§7), and bounded
headers (§8) -- with ruff-style diagnostics: stable codes, severities,
``file:line`` locations, text and JSON output.  Exposed on the command
line as ``python -m repro lint``.

Rules live in :mod:`.semantic` (sweeps over a bounded explored state
space), :mod:`.source` (AST audits of protocol logic classes), and the
deep-analysis modules :mod:`.taint` / :mod:`.intervals` /
:mod:`.claims` (interprocedural dataflow on the :mod:`.dataflow`
engine, run under ``--deep-source``); all register themselves in
:mod:`.registry` when this package is imported.  The import order
below fixes the REP301 < REP302 < REP303 < REP304 registration order.
"""

from .diagnostics import Diagnostic, LintReport, REPORT_VERSION
from .registry import RULES, LintRule, rules_for
from .driver import (
    DeepAudit,
    LintTarget,
    lint_one,
    lint_targets,
    target_from,
    zoo_targets,
)
from .semantic import (
    AutomatonModel,
    ExploredModel,
    build_automaton_model,
    build_protocol_model,
)
from .source import SourceAudit, build_source_audits, class_sources
from .dataflow import AnalysisResult, analyze_station
from .taint import check_message_taint, message_independent
from .intervals import HeaderReport, check_header_intervals, header_report
from .claims import (
    CrashReport,
    ProtocolClaims,
    build_verdict,
    check_contradictions,
    check_crash_escape,
    crash_report,
    parse_claims,
)

__all__ = [
    "AnalysisResult",
    "CrashReport",
    "DeepAudit",
    "HeaderReport",
    "ProtocolClaims",
    "analyze_station",
    "build_verdict",
    "check_contradictions",
    "check_crash_escape",
    "check_header_intervals",
    "check_message_taint",
    "crash_report",
    "header_report",
    "message_independent",
    "parse_claims",
    "AutomatonModel",
    "Diagnostic",
    "ExploredModel",
    "LintReport",
    "LintRule",
    "LintTarget",
    "REPORT_VERSION",
    "RULES",
    "SourceAudit",
    "build_automaton_model",
    "build_protocol_model",
    "build_source_audits",
    "class_sources",
    "lint_one",
    "lint_targets",
    "rules_for",
    "target_from",
    "zoo_targets",
]
