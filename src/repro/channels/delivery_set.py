"""Delivery sets (paper, Section 6.1) and the ``del`` surgery (Section 6.3).

A *delivery set* is a set ``S`` of pairs ``(i, j)`` of positive integers
such that

* for each positive integer ``j`` there is a *unique* pair ``(i, j)`` in
  ``S`` (every receive slot is assigned a send index), and
* for each positive integer ``i`` there is *at most one* pair ``(i, j)``
  (no send index is delivered twice).

``(i, j) in S`` correlates the ``j``-th ``receive_pkt`` event with the
``i``-th ``send_pkt`` event.  A send index appearing in no pair is a
*lost* packet.  A *monotone* delivery set (no ``(i1,j1),(i2,j2)`` with
``i1 < i2`` and ``j1 >= j2``) yields FIFO behavior.

Delivery sets are infinite objects; we represent them with an explicit
finite prefix plus an eventually-FIFO tail:

* ``prefix[j-1]`` gives the send index for receive slot ``j`` for
  ``j = 1 .. len(prefix)``;
* for ``j > len(prefix)`` the send index is ``j + tail_offset``.

Every construction in the paper's lemmas (6.3 clean states, 6.5-6.7
waiting sequences, 6.6 subsequence losses) performs finite surgery on the
prefix and re-normalizes the tail, which this representation expresses
exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


class DeliverySetError(ValueError):
    """Raised when constructing an ill-formed delivery set."""


@dataclass(frozen=True)
class DeliverySet:
    """A delivery set with finite prefix and FIFO tail (see module docs)."""

    prefix: Tuple[int, ...] = ()
    tail_offset: int = 0

    def __post_init__(self) -> None:
        if any(i < 1 for i in self.prefix):
            raise DeliverySetError("send indices must be positive")
        if len(set(self.prefix)) != len(self.prefix):
            raise DeliverySetError(
                "a send index may be delivered at most once"
            )
        first_tail = len(self.prefix) + 1 + self.tail_offset
        if first_tail < 1:
            raise DeliverySetError(
                "tail would assign non-positive send indices"
            )
        if self.prefix and max(self.prefix) >= first_tail:
            raise DeliverySetError(
                "tail send indices must not collide with the prefix "
                f"(prefix max {max(self.prefix)}, first tail {first_tail})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def fifo() -> "DeliverySet":
        """The identity delivery set ``{(j, j)}``: FIFO, no losses."""
        return DeliverySet((), 0)

    @staticmethod
    def from_pairs(
        pairs: Iterable[Tuple[int, int]], tail_offset: Optional[int] = None
    ) -> "DeliverySet":
        """Build from explicit ``(i, j)`` pairs covering ``j = 1..n``.

        The pairs must cover each receive slot ``1..n`` exactly once.  If
        ``tail_offset`` is omitted, the smallest collision-free FIFO tail
        is chosen.
        """
        by_j = {}
        for i, j in pairs:
            if j in by_j:
                raise DeliverySetError(f"duplicate receive slot {j}")
            by_j[j] = i
        if sorted(by_j) != list(range(1, len(by_j) + 1)):
            raise DeliverySetError(
                "pairs must cover receive slots 1..n contiguously"
            )
        prefix = tuple(by_j[j] for j in range(1, len(by_j) + 1))
        if tail_offset is None:
            tail_offset = (max(prefix) if prefix else 0) - len(prefix)
        return DeliverySet(prefix, tail_offset)

    # ------------------------------------------------------------------
    # Membership and lookup
    # ------------------------------------------------------------------

    def source_of(self, j: int) -> int:
        """The unique send index ``i`` with ``(i, j)`` in the set."""
        if j < 1:
            raise DeliverySetError("receive slots are positive")
        if j <= len(self.prefix):
            return self.prefix[j - 1]
        return j + self.tail_offset

    def slot_of(self, i: int) -> Optional[int]:
        """The receive slot of send index ``i``, or None if ``i`` is lost."""
        if i < 1:
            raise DeliverySetError("send indices are positive")
        for j, source in enumerate(self.prefix, start=1):
            if source == i:
                return j
        j = i - self.tail_offset
        if j > len(self.prefix):
            return j
        return None

    def contains(self, i: int, j: int) -> bool:
        return self.source_of(j) == i

    def is_lost(self, i: int) -> bool:
        """True iff send index ``i`` is assigned to no receive slot."""
        return self.slot_of(i) is None

    def lost_indices(self, up_to: int) -> Tuple[int, ...]:
        """All lost send indices in ``1..up_to``."""
        return tuple(i for i in range(1, up_to + 1) if self.is_lost(i))

    def pairs(self, up_to_slot: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(i, j)`` pairs for slots ``1..up_to_slot``."""
        for j in range(1, up_to_slot + 1):
            yield (self.source_of(j), j)

    # ------------------------------------------------------------------
    # Monotonicity (Section 6.2)
    # ------------------------------------------------------------------

    def is_monotone(self) -> bool:
        """True iff the set is monotone (yields FIFO delivery)."""
        last = 0
        for i in self.prefix:
            if i <= last:
                return False
            last = i
        return last < len(self.prefix) + 1 + self.tail_offset

    # ------------------------------------------------------------------
    # The ``del`` surgery (Section 6.3)
    # ------------------------------------------------------------------

    def delete_slot(self, j: int) -> "DeliverySet":
        """``del(S, (i, j))``: drop the pair at slot ``j``, shifting later slots.

        Per the paper: pairs at slots below ``j`` are unchanged; the pair
        at ``j`` is removed (its send index becomes lost); each pair at a
        slot ``j' > j`` moves down to slot ``j' - 1``.  Monotone sets stay
        monotone.
        """
        if j < 1:
            raise DeliverySetError("receive slots are positive")
        if j <= len(self.prefix):
            prefix = self.prefix[: j - 1] + self.prefix[j:]
            return DeliverySet(prefix, self.tail_offset + 1)
        # The deleted slot lies in the tail: materialize the tail entries
        # between the prefix and j, then shift.
        extra = tuple(
            jj + self.tail_offset for jj in range(len(self.prefix) + 1, j)
        )
        return DeliverySet(self.prefix + extra, self.tail_offset + 1)

    def delete_slots(self, slots: Iterable[int]) -> "DeliverySet":
        """Delete several slots (expressed in the *original* numbering)."""
        result = self
        for offset, j in enumerate(sorted(set(slots))):
            result = result.delete_slot(j - offset)
        return result

    def delete_pair(self, i: int, j: int) -> "DeliverySet":
        """``del(S, (i, j))`` with the pair given explicitly."""
        if self.source_of(j) != i:
            raise DeliverySetError(f"({i}, {j}) is not in the delivery set")
        return self.delete_slot(j)


# ----------------------------------------------------------------------
# Scripted generators used by the simulation harness
# ----------------------------------------------------------------------


def random_lossy_fifo(
    seed: int, loss_rate: float, horizon: int
) -> DeliverySet:
    """A monotone delivery set losing each send independently w.p. ``loss_rate``.

    The loss pattern covers send indices ``1..horizon``; beyond the
    horizon the set is FIFO with no losses.  Deterministic in ``seed``.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise DeliverySetError("loss_rate must be in [0, 1)")
    rng = random.Random(seed)
    surviving = [
        i for i in range(1, horizon + 1) if rng.random() >= loss_rate
    ]
    prefix = tuple(surviving)
    return DeliverySet(prefix, horizon - len(prefix))


def random_reordering(
    seed: int, loss_rate: float, window: int, horizon: int
) -> DeliverySet:
    """A (generally non-monotone) delivery set with bounded reordering.

    Send indices ``1..horizon`` are shuffled within blocks of size
    ``window`` and each is lost independently with probability
    ``loss_rate``; beyond the horizon the set is FIFO.  Deterministic in
    ``seed``.
    """
    if window < 1:
        raise DeliverySetError("window must be positive")
    rng = random.Random(seed)
    order: List[int] = []
    for start in range(1, horizon + 1, window):
        block = list(range(start, min(start + window, horizon + 1)))
        rng.shuffle(block)
        order.extend(i for i in block if rng.random() >= loss_rate)
    prefix = tuple(order)
    return DeliverySet(prefix, horizon - len(prefix))
