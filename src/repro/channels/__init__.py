"""The physical layer (paper, Sections 3 and 6): specs and channels."""

from .actions import (
    CRASH,
    FAIL,
    RECEIVE_PKT,
    SEND_PKT,
    WAKE,
    crash,
    fail,
    packet_families,
    physical_families,
    physical_layer_signature,
    receive_pkt,
    send_pkt,
    wake,
)
from .bounded import BoundedChannel, BoundedChannelState
from .delivery_set import (
    DeliverySet,
    DeliverySetError,
    random_lossy_fifo,
    random_reordering,
)
from .modules import pl_fifo_module, pl_module
from .nondet import NondetLossyFifoChannel
from .permissive import (
    ChannelSurgeryError,
    PermissiveChannel,
    PermissiveChannelState,
    PermissiveFifoChannel,
)
from .properties import (
    crash_intervals,
    pl1,
    pl2,
    pl3,
    pl4,
    pl5,
    pl6,
    pl6_finite_diagnostic,
    pl_well_formed,
    unbounded_working_interval,
    working_intervals,
)
from .scripted import (
    lossy_fifo_channel,
    perfect_fifo_channel,
    reordering_channel,
)

__all__ = [
    "BoundedChannel",
    "BoundedChannelState",
    "CRASH",
    "ChannelSurgeryError",
    "DeliverySet",
    "DeliverySetError",
    "FAIL",
    "NondetLossyFifoChannel",
    "PermissiveChannel",
    "PermissiveChannelState",
    "PermissiveFifoChannel",
    "RECEIVE_PKT",
    "SEND_PKT",
    "WAKE",
    "crash",
    "crash_intervals",
    "fail",
    "lossy_fifo_channel",
    "packet_families",
    "perfect_fifo_channel",
    "physical_families",
    "physical_layer_signature",
    "pl1",
    "pl2",
    "pl3",
    "pl4",
    "pl5",
    "pl6",
    "pl6_finite_diagnostic",
    "pl_fifo_module",
    "pl_module",
    "pl_well_formed",
    "random_lossy_fifo",
    "random_reordering",
    "receive_pkt",
    "reordering_channel",
    "send_pkt",
    "unbounded_working_interval",
    "wake",
    "working_intervals",
]
