"""Physical-layer action constructors (paper, Section 3).

The physical layer for endpoint pair ``(t, r)`` has input actions
``send_pkt``, ``wake``, ``fail`` and ``crash`` (all superscripted
``t,r``) and output actions ``receive_pkt``.  The ``wake``/``fail``/
``crash`` actions are *shared* with the data link layer signature
(Section 4): they are the same actions, which is how the composed system
receives a single notification stream.
"""

from __future__ import annotations

from typing import Tuple

from ..alphabets import Packet
from ..ioa.actions import Action, action_family, directed
from ..ioa.signature import ActionSignature, FamilyKey

SEND_PKT = "send_pkt"
RECEIVE_PKT = "receive_pkt"
WAKE = "wake"
FAIL = "fail"
CRASH = "crash"


def send_pkt(src: str, dst: str, packet: Packet) -> Action:
    """``send_pkt^{src,dst}(p)``: the sender hands ``p`` to the channel."""
    return directed(SEND_PKT, src, dst, packet)


def receive_pkt(src: str, dst: str, packet: Packet) -> Action:
    """``receive_pkt^{src,dst}(p)``: the channel delivers ``p``."""
    return directed(RECEIVE_PKT, src, dst, packet)


def wake(src: str, dst: str) -> Action:
    """``wake^{src,dst}``: the medium (direction src->dst) became active."""
    return directed(WAKE, src, dst)


def fail(src: str, dst: str) -> Action:
    """``fail^{src,dst}``: the medium (direction src->dst) became inactive."""
    return directed(FAIL, src, dst)


def crash(src: str, dst: str) -> Action:
    """``crash^{src,dst}``: station ``src`` suffered a hardware crash."""
    return directed(CRASH, src, dst)


def physical_layer_signature(src: str, dst: str) -> ActionSignature:
    """``sig(PL^{src,dst})``: the physical-layer action signature."""
    return ActionSignature.make(
        inputs=[
            action_family(SEND_PKT, src, dst),
            action_family(WAKE, src, dst),
            action_family(FAIL, src, dst),
            action_family(CRASH, src, dst),
        ],
        outputs=[action_family(RECEIVE_PKT, src, dst)],
    )


def physical_families(src: str, dst: str) -> Tuple[FamilyKey, ...]:
    """All physical-layer action families for the given direction."""
    return (
        action_family(SEND_PKT, src, dst),
        action_family(RECEIVE_PKT, src, dst),
        action_family(WAKE, src, dst),
        action_family(FAIL, src, dst),
        action_family(CRASH, src, dst),
    )


def packet_families(src: str, dst: str) -> Tuple[FamilyKey, ...]:
    """The ``send_pkt``/``receive_pkt`` families hidden by ``hide_Phi``."""
    return (
        action_family(SEND_PKT, src, dst),
        action_family(RECEIVE_PKT, src, dst),
    )


def is_send_pkt(action: Action, src: str, dst: str) -> bool:
    return action.key == (SEND_PKT, (src, dst))


def is_receive_pkt(action: Action, src: str, dst: str) -> bool:
    return action.key == (RECEIVE_PKT, (src, dst))
