"""Concrete scripted channels for simulation (lossy FIFO, reordering).

The permissive channels of Section 6 are *universal*: any loss/reorder
behavior is a choice of delivery set.  For simulation and property
testing we therefore build concrete channels as permissive channels whose
delivery set is generated pseudo-randomly from a seed -- deterministic,
replayable adversaries.

``lossy_fifo_channel`` produces a FIFO physical channel that drops each
packet independently; ``reordering_channel`` produces a non-FIFO channel
with bounded reordering windows and optional loss.
"""

from __future__ import annotations

from typing import Optional

from .delivery_set import random_lossy_fifo, random_reordering
from .permissive import PermissiveChannel, PermissiveFifoChannel

DEFAULT_HORIZON = 100_000


def lossy_fifo_channel(
    src: str,
    dst: str,
    seed: int = 0,
    loss_rate: float = 0.0,
    horizon: int = DEFAULT_HORIZON,
    name: Optional[str] = None,
) -> PermissiveFifoChannel:
    """A FIFO physical channel dropping packets i.i.d. with ``loss_rate``.

    Beyond ``horizon`` sends, the channel becomes loss-free FIFO (the
    delivery-set representation requires an eventually-FIFO tail; choose
    the horizon larger than any simulated run).
    """
    delivery = random_lossy_fifo(seed, loss_rate, horizon)
    return PermissiveFifoChannel(
        src,
        dst,
        initial_delivery=delivery,
        name=name or f"lossy-fifo[{src}->{dst},p={loss_rate},seed={seed}]",
    )


def reordering_channel(
    src: str,
    dst: str,
    seed: int = 0,
    loss_rate: float = 0.0,
    window: int = 4,
    horizon: int = DEFAULT_HORIZON,
    name: Optional[str] = None,
) -> PermissiveChannel:
    """A non-FIFO physical channel with windowed reordering and loss."""
    delivery = random_reordering(seed, loss_rate, window, horizon)
    return PermissiveChannel(
        src,
        dst,
        initial_delivery=delivery,
        name=name
        or f"reorder[{src}->{dst},w={window},p={loss_rate},seed={seed}]",
    )


def perfect_fifo_channel(
    src: str, dst: str, name: Optional[str] = None
) -> PermissiveFifoChannel:
    """A loss-free FIFO channel (the identity delivery set)."""
    return PermissiveFifoChannel(
        src, dst, name=name or f"perfect-fifo[{src}->{dst}]"
    )
