"""The schedule modules ``PL`` and ``PL-FIFO`` (paper, Section 3).

``scheds(PL^{t,r})`` is the set of physical-layer action sequences
satisfying "if well-formed and (PL1), (PL2) hold, then (PL3), (PL4) and
(PL6) hold"; ``PL-FIFO`` additionally guarantees (PL5).  A *physical
channel* is an automaton solving ``PL``; a *FIFO physical channel* one
solving ``PL-FIFO``.
"""

from __future__ import annotations

from functools import partial

from ..ioa.schedule_module import ScheduleModule
from .actions import physical_layer_signature
from .properties import pl1, pl2, pl3, pl4, pl5, pl6, pl_well_formed


def pl_module(src: str, dst: str) -> ScheduleModule:
    """The schedule module ``PL^{src,dst}``."""
    return ScheduleModule(
        name=f"PL^{src},{dst}",
        signature=physical_layer_signature(src, dst),
        assumptions=[
            partial(pl_well_formed, src=src, dst=dst),
            partial(pl1, src=src, dst=dst),
            partial(pl2, src=src, dst=dst),
        ],
        guarantees=[
            partial(pl3, src=src, dst=dst),
            partial(pl4, src=src, dst=dst),
            partial(pl6, src=src, dst=dst),
        ],
    )


def pl_fifo_module(src: str, dst: str) -> ScheduleModule:
    """The schedule module ``PL-FIFO^{src,dst}``."""
    base = pl_module(src, dst)
    return ScheduleModule(
        name=f"PL-FIFO^{src},{dst}",
        signature=base.signature,
        assumptions=base.assumptions,
        guarantees=[
            partial(pl3, src=src, dst=dst),
            partial(pl4, src=src, dst=dst),
            partial(pl5, src=src, dst=dst),
            partial(pl6, src=src, dst=dst),
        ],
    )
