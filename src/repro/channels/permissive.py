"""The permissive physical channels C-bar and C-hat (paper, Sections 6.1-6.2).

``PermissiveChannel`` is the paper's universal channel ``C-bar^{x,xbar}``:
its state holds two counters, the partial map ``packet`` from send indices
to packets, and a :class:`~repro.channels.delivery_set.DeliverySet` ``S``
fixing which sends are delivered at which receive slots.  The
``receive_pkt(p)`` precondition is that ``packet(i) = p`` for the ``i``
with ``(i, counter2 + 1) in S``.  ``fail``/``wake``/``crash`` inputs have
no effect.  All outputs form a single task.

``PermissiveFifoChannel`` is ``C-hat``: identical, but its delivery set is
required to be monotone, which makes it a FIFO physical channel.

The paper resolves the channel's start-state nondeterminism (the choice
of ``S``) *retroactively*: Lemmas 6.3 and 6.5-6.7 argue that a given
schedule "can leave" the channel in a state with a rewritten delivery
set, provided the rewrite agrees with the old set on the receive slots
already consumed.  The surgery functions below construct exactly those
rewritten states; each validates the agreement condition, so a surgered
state is always reachable by the same schedule under a different (legal)
initial ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence, Tuple

from ..alphabets import Packet
from ..ioa.actions import Action
from ..ioa.automaton import Automaton
from ..ioa.signature import ActionSignature
from .actions import (
    CRASH,
    FAIL,
    RECEIVE_PKT,
    SEND_PKT,
    WAKE,
    physical_layer_signature,
    receive_pkt,
)
from .delivery_set import DeliverySet, DeliverySetError


class ChannelSurgeryError(ValueError):
    """Raised when a requested channel-state rewrite is not legal."""


@dataclass(frozen=True)
class PermissiveChannelState:
    """The state of C-bar / C-hat.

    ``counter1`` counts ``send_pkt`` events, ``counter2`` counts
    ``receive_pkt`` events, ``sent[i-1]`` is ``packet(i)``, and
    ``delivery`` is the delivery set ``S``.
    """

    counter1: int = 0
    counter2: int = 0
    sent: Tuple[Packet, ...] = ()
    delivery: DeliverySet = DeliverySet.fifo()

    # -- derived views --------------------------------------------------

    def packet_at(self, i: int) -> Optional[Packet]:
        """``packet(i)``: the packet of the ``i``-th send, if it happened."""
        if 1 <= i <= self.counter1:
            return self.sent[i - 1]
        return None

    def deliverable(self) -> Optional[Tuple[int, Packet]]:
        """The (send index, packet) the channel may deliver next, if any.

        This is the packet satisfying the ``receive_pkt`` precondition:
        the delivery set's source for slot ``counter2 + 1``, provided
        that send has already occurred.
        """
        i = self.delivery.source_of(self.counter2 + 1)
        packet = self.packet_at(i)
        if packet is None:
            return None
        return (i, packet)

    def delivered_indices(self) -> Tuple[int, ...]:
        """Send indices delivered so far, in delivery order."""
        return tuple(
            self.delivery.source_of(j) for j in range(1, self.counter2 + 1)
        )

    def in_transit_indices(self) -> Tuple[int, ...]:
        """Send indices sent but not (yet) delivered, in send order.

        These are the packets "in transit" in the sense of Section 6.3:
        ``send_pkt`` occurred, ``receive_pkt`` has not.
        """
        delivered = set(self.delivered_indices())
        return tuple(
            i for i in range(1, self.counter1 + 1) if i not in delivered
        )

    def waiting_sequence(self) -> Tuple[Packet, ...]:
        """The maximal sequence of packets *waiting* in this state.

        ``q1 .. qk`` is waiting if slot ``counter2 + l`` maps to an
        already-sent index for each ``l <= k`` (paper, Section 6.3).
        """
        waiting = []
        slot = self.counter2 + 1
        while True:
            i = self.delivery.source_of(slot)
            if i > self.counter1:
                break
            waiting.append(self.sent[i - 1])
            slot += 1
        return tuple(waiting)

    def is_clean(self) -> bool:
        """Cleanliness per Section 6.3.

        Clean means (i) no undelivered slot is assigned a send index
        ``<= counter1`` except via the FIFO tail condition, and (ii) slot
        ``counter2 + k`` maps to ``counter1 + k`` for all ``k > 0``: the
        channel is empty and will act FIFO with no losses from now on.
        """
        prefix_len = len(self.delivery.prefix)
        for j in range(self.counter2 + 1, prefix_len + 1):
            if self.delivery.source_of(j) != self.counter1 + (j - self.counter2):
                return False
        # Tail slots must continue the same pattern.
        first_tail_slot = max(prefix_len + 1, self.counter2 + 1)
        return self.delivery.source_of(first_tail_slot) == self.counter1 + (
            first_tail_slot - self.counter2
        )


class PermissiveChannel(Automaton):
    """The universal (non-FIFO) physical channel ``C-bar^{src,dst}``.

    The start state's delivery set defaults to FIFO/no-loss but may be
    any delivery set (the paper's arbitrary initial ``S``).
    """

    fifo_only = False

    def __init__(
        self,
        src: str,
        dst: str,
        initial_delivery: Optional[DeliverySet] = None,
        name: Optional[str] = None,
    ):
        self.src = src
        self.dst = dst
        self._initial_delivery = (
            DeliverySet.fifo() if initial_delivery is None else initial_delivery
        )
        self._validate_delivery(self._initial_delivery)
        self._signature = physical_layer_signature(src, dst)
        self.name = name or f"channel[{src}->{dst}]"

    # ------------------------------------------------------------------

    def _validate_delivery(self, delivery: DeliverySet) -> None:
        if self.fifo_only and not delivery.is_monotone():
            raise DeliverySetError(
                "a FIFO physical channel requires a monotone delivery set"
            )

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> PermissiveChannelState:
        return PermissiveChannelState(delivery=self._initial_delivery)

    def transitions(
        self, state: PermissiveChannelState, action: Action
    ) -> Tuple[PermissiveChannelState, ...]:
        if not self._signature.contains(action):
            return ()
        if action.name == SEND_PKT:
            packet = action.payload
            return (
                PermissiveChannelState(
                    state.counter1 + 1,
                    state.counter2,
                    state.sent + (packet,),
                    state.delivery,
                ),
            )
        if action.name == RECEIVE_PKT:
            deliverable = state.deliverable()
            if deliverable is None or deliverable[1] != action.payload:
                return ()
            return (
                PermissiveChannelState(
                    state.counter1,
                    state.counter2 + 1,
                    state.sent,
                    state.delivery,
                ),
            )
        if action.name in (WAKE, FAIL, CRASH):
            return (state,)
        return ()

    def enabled_local_actions(
        self, state: PermissiveChannelState
    ) -> Iterable[Action]:
        deliverable = state.deliverable()
        if deliverable is not None:
            yield receive_pkt(self.src, self.dst, deliverable[1])

    def task_of(self, action: Action) -> Hashable:
        # All output actions in a single class (paper, Section 6.1).
        return (self.name, "deliver")

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, "deliver")]

    # ------------------------------------------------------------------
    # Adversary surgeries (Lemmas 6.3, 6.5, 6.6, 6.7)
    # ------------------------------------------------------------------

    def _rewrite(
        self, state: PermissiveChannelState, delivery: DeliverySet
    ) -> PermissiveChannelState:
        """Replace the delivery set, preserving consumed slots.

        The rewrite is legal only if the new set agrees with the old one
        on every receive slot already consumed -- that is the condition
        under which the same schedule could have been produced from a
        start state carrying the new set.
        """
        for j in range(1, state.counter2 + 1):
            if delivery.source_of(j) != state.delivery.source_of(j):
                raise ChannelSurgeryError(
                    f"rewrite changes already-consumed slot {j}"
                )
        self._validate_delivery(delivery)
        return PermissiveChannelState(
            state.counter1, state.counter2, state.sent, delivery
        )

    def make_clean(
        self, state: PermissiveChannelState
    ) -> PermissiveChannelState:
        """Lemma 6.3: a clean state reachable under the same schedule.

        Keeps the consumed slots and schedules slot ``counter2 + k`` to
        send ``counter1 + k``: every packet currently in transit is lost
        and the channel acts FIFO with no losses from now on.
        """
        consumed = tuple(
            state.delivery.source_of(j) for j in range(1, state.counter2 + 1)
        )
        delivery = DeliverySet(consumed, state.counter1 - state.counter2)
        return self._rewrite(state, delivery)

    def with_waiting(
        self, state: PermissiveChannelState, indices: Sequence[int]
    ) -> PermissiveChannelState:
        """Lemmas 6.5/6.6/6.7: schedule exactly ``indices`` as the next deliveries.

        ``indices`` are send indices, which must be distinct, not yet
        delivered, and already sent (``<= counter1``).  After they drain
        the channel is clean (future sends delivered FIFO; every other
        packet currently in transit is lost).

        For a FIFO channel the indices must additionally keep the
        delivery set monotone (increasing, and above every consumed
        index), matching Lemma 6.5's use with ``C-hat``.
        """
        delivered = set(state.delivered_indices())
        seen = set()
        for i in indices:
            if not 1 <= i <= state.counter1:
                raise ChannelSurgeryError(
                    f"send index {i} has not occurred (counter1 = "
                    f"{state.counter1})"
                )
            if i in delivered:
                raise ChannelSurgeryError(f"send index {i} already delivered")
            if i in seen:
                raise ChannelSurgeryError(f"send index {i} scheduled twice")
            seen.add(i)
        consumed = tuple(
            state.delivery.source_of(j) for j in range(1, state.counter2 + 1)
        )
        prefix = consumed + tuple(indices)
        floor = max([state.counter1, *prefix]) if prefix else state.counter1
        delivery = DeliverySet(prefix, floor - len(prefix))
        return self._rewrite(state, delivery)

    def lose_all_in_transit(
        self, state: PermissiveChannelState
    ) -> PermissiveChannelState:
        """Lemma 6.6 with the empty subsequence: lose everything in transit."""
        return self.make_clean(state)


class PermissiveFifoChannel(PermissiveChannel):
    """The permissive FIFO channel ``C-hat`` (paper, Section 6.2).

    Identical to :class:`PermissiveChannel` but restricted to monotone
    delivery sets, which makes it a FIFO physical channel.  All
    surgeries validate monotonicity.
    """

    fifo_only = True
