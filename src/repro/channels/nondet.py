"""A nondeterministic lossy FIFO channel for exhaustive exploration.

The permissive channels of Section 6 resolve all nondeterminism in
their start state (the delivery set), which suits the constructive
engines but means one automaton instance explores one adversary.  For
*exhaustive* bounded model checking we want the loss nondeterminism in
the transition relation instead: this channel keeps a FIFO queue,
delivers only the head, and may internally drop any queued packet at
any time.  Its behaviors are exactly the failure-free PL-FIFO behaviors
(loss anywhere, no reordering, no duplication), so exploring the
composed system over it covers *every* lossy-FIFO adversary up to the
chosen bounds.

Used with :func:`repro.ioa.explorer.explore` to verify, e.g., that the
alternating-bit protocol never duplicates or reorders under any loss
pattern and any interleaving (and to find the counterexample for
protocols that do).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Tuple

from ..alphabets import Packet
from ..ioa.actions import Action, action_family, directed
from ..ioa.automaton import Automaton
from ..ioa.signature import ActionSignature
from .actions import (
    CRASH,
    FAIL,
    RECEIVE_PKT,
    SEND_PKT,
    WAKE,
    physical_layer_signature,
    receive_pkt,
)

LOSE = "lose"


class NondetLossyFifoChannel(Automaton):
    """FIFO queue channel with internal, nondeterministic loss.

    The ``lose`` action (internal, payload = queue position) removes a
    queued packet; ``receive_pkt`` delivers the queue head.  Note that
    under the *fair* executors the loss task is always enabled while
    the queue is non-empty, so this channel is intended for bounded
    exploration (where fairness is irrelevant), not for fair
    simulation -- use the permissive channels there.
    """

    def __init__(
        self,
        src: str,
        dst: str,
        capacity: Optional[int] = None,
        reorder_depth: int = 1,
        name: Optional[str] = None,
    ):
        """``capacity`` bounds the queue for finite-state exploration:
        a send arriving at a full queue is lost (finite buffer).

        ``reorder_depth`` is the displacement bound: any of the first
        ``reorder_depth`` queued packets may be delivered next.  Depth 1
        is FIFO; a depth ``>= capacity`` yields arbitrary reordering up
        to the buffer bound.  Exploring a composition over channels with
        increasing depth maps a protocol's *exact* reordering tolerance
        (cf. the paper's footnote 1).
        """
        self.src = src
        self.dst = dst
        self.capacity = capacity
        if reorder_depth < 1:
            raise ValueError("reorder_depth must be at least 1")
        self.reorder_depth = reorder_depth
        base = physical_layer_signature(src, dst)
        self._signature = ActionSignature(
            base.inputs,
            base.outputs,
            frozenset({action_family(LOSE, src, dst)}),
        )
        self.name = name or f"nondet-lossy[{src}->{dst}]"

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> Tuple[Packet, ...]:
        return ()

    def transitions(
        self, state: Tuple[Packet, ...], action: Action
    ) -> Tuple[Tuple[Packet, ...], ...]:
        if not self._signature.contains(action):
            return ()
        if action.name == SEND_PKT:
            if self.capacity is not None and len(state) >= self.capacity:
                return (state,)  # full buffer: the packet is lost
            return (state + (action.payload,),)
        if action.name == RECEIVE_PKT:
            results = []
            for position in range(min(self.reorder_depth, len(state))):
                if state[position] == action.payload:
                    results.append(
                        state[:position] + state[position + 1 :]
                    )
            return tuple(results)
        if action.name == LOSE:
            position = action.payload
            if isinstance(position, int) and 0 <= position < len(state):
                return (state[:position] + state[position + 1 :],)
            return ()
        if action.name in (WAKE, FAIL, CRASH):
            return (state,)
        return ()

    def enabled_local_actions(
        self, state: Tuple[Packet, ...]
    ) -> Iterable[Action]:
        seen = set()
        for position in range(min(self.reorder_depth, len(state))):
            packet = state[position]
            if packet not in seen:
                seen.add(packet)
                yield receive_pkt(self.src, self.dst, packet)
        for position in range(len(state)):
            yield directed(LOSE, self.src, self.dst, position)

    def task_of(self, action: Action) -> Hashable:
        return (self.name, action.name)

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, RECEIVE_PKT), (self.name, LOSE)]
