"""Physical-layer trace properties (paper, Section 3).

Executable forms of well-formedness, working intervals and properties
(PL1)-(PL6) over finite sequences of physical-layer actions.  Every
predicate returns a :class:`~repro.ioa.schedule_module.PropertyResult`
carrying a violation witness when it fails.

Liveness caveat: (PL6) constrains only infinite behaviors ("if infinitely
many send events occur ...").  On a finite sequence its hypothesis is
never met, so the checker returns success; the analysis layer offers a
stronger finite-trace diagnostic for quiescent executions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..ioa.actions import Action
from ..ioa.schedule_module import PropertyResult
from .actions import CRASH, FAIL, RECEIVE_PKT, SEND_PKT, WAKE

Interval = Tuple[int, int]  # [start, end) in event indices


# ----------------------------------------------------------------------
# Interval machinery (shared with the data-link layer)
# ----------------------------------------------------------------------


def crash_intervals(
    schedule: Sequence[Action], crash_direction: Tuple[str, str]
) -> List[Interval]:
    """Maximal contiguous index ranges containing no crash event.

    The crash events themselves belong to no interval; intervals are
    returned as half-open ``[start, end)`` ranges and may be empty.
    """
    intervals: List[Interval] = []
    start = 0
    for index, action in enumerate(schedule):
        if action.key == (CRASH, crash_direction):
            intervals.append((start, index))
            start = index + 1
    intervals.append((start, len(schedule)))
    return intervals


def alternation_well_formed(
    schedule: Sequence[Action], direction: Tuple[str, str]
) -> Optional[int]:
    """Check strict wake/fail alternation within each crash interval.

    Within every crash interval (delimited by ``crash`` events for
    ``direction``), the ``fail`` and ``wake`` events for ``direction``
    must alternate strictly, starting with ``wake``.  Returns the index
    of the first offending event, or None if well-formed.
    """
    expect_wake = True
    for index, action in enumerate(schedule):
        if action.key == (CRASH, direction):
            expect_wake = True
        elif action.key == (WAKE, direction):
            if not expect_wake:
                return index
            expect_wake = False
        elif action.key == (FAIL, direction):
            if expect_wake:
                return index
            expect_wake = True
    return None


def working_intervals(
    schedule: Sequence[Action], direction: Tuple[str, str]
) -> List[Interval]:
    """Working intervals for ``direction`` in a well-formed sequence.

    Each runs from just after a ``wake`` event to just before the next
    ``fail`` or ``crash`` event (or the end of the sequence), excluding
    the delimiting events themselves.
    """
    intervals: List[Interval] = []
    open_start: Optional[int] = None
    for index, action in enumerate(schedule):
        if action.key == (WAKE, direction):
            open_start = index + 1
        elif action.key in ((FAIL, direction), (CRASH, direction)):
            if open_start is not None:
                intervals.append((open_start, index))
                open_start = None
    if open_start is not None:
        intervals.append((open_start, len(schedule)))
    return intervals


def unbounded_working_interval(
    schedule: Sequence[Action], direction: Tuple[str, str]
) -> Optional[Interval]:
    """The unbounded working interval, if the sequence has one.

    For a finite sequence this is the suffix following a ``wake`` event
    with no later ``fail`` or ``crash`` event for ``direction`` -- the
    natural finite rendering of the paper's definition (the executions
    built by the engines are exactly of this shape).
    """
    last_wake: Optional[int] = None
    for index, action in enumerate(schedule):
        if action.key == (WAKE, direction):
            last_wake = index
        elif action.key in ((FAIL, direction), (CRASH, direction)):
            last_wake = None
    if last_wake is None:
        return None
    return (last_wake + 1, len(schedule))


def index_in_intervals(index: int, intervals: Iterable[Interval]) -> bool:
    return any(start <= index < end for start, end in intervals)


# ----------------------------------------------------------------------
# Well-formedness and (PL1)-(PL6)
# ----------------------------------------------------------------------


def pl_well_formed(
    schedule: Sequence[Action], src: str, dst: str
) -> PropertyResult:
    """Physical-layer well-formedness (Section 3)."""
    offending = alternation_well_formed(schedule, (src, dst))
    if offending is None:
        return PropertyResult.ok("PL-well-formed")
    return PropertyResult.violated(
        "PL-well-formed",
        f"event {offending} ({schedule[offending]}) breaks the strict "
        "wake/fail alternation",
    )


def pl1(schedule: Sequence[Action], src: str, dst: str) -> PropertyResult:
    """(PL1): every ``send_pkt`` event occurs in a working interval."""
    intervals = working_intervals(schedule, (src, dst))
    for index, action in enumerate(schedule):
        if action.key == (SEND_PKT, (src, dst)) and not index_in_intervals(
            index, intervals
        ):
            return PropertyResult.violated(
                "PL1",
                f"send_pkt at event {index} lies outside every working "
                "interval",
            )
    return PropertyResult.ok("PL1")


def pl2(schedule: Sequence[Action], src: str, dst: str) -> PropertyResult:
    """(PL2): every packet is sent at most once."""
    seen = {}
    for index, action in enumerate(schedule):
        if action.key == (SEND_PKT, (src, dst)):
            packet = action.payload
            if packet in seen:
                return PropertyResult.violated(
                    "PL2",
                    f"packet {packet} sent at events {seen[packet]} and "
                    f"{index}",
                )
            seen[packet] = index
    return PropertyResult.ok("PL2")


def pl3(schedule: Sequence[Action], src: str, dst: str) -> PropertyResult:
    """(PL3): every packet is received at most once."""
    seen = {}
    for index, action in enumerate(schedule):
        if action.key == (RECEIVE_PKT, (src, dst)):
            packet = action.payload
            if packet in seen:
                return PropertyResult.violated(
                    "PL3",
                    f"packet {packet} received at events {seen[packet]} "
                    f"and {index}",
                )
            seen[packet] = index
    return PropertyResult.ok("PL3")


def pl4(schedule: Sequence[Action], src: str, dst: str) -> PropertyResult:
    """(PL4): every receive is preceded by a send of the same packet."""
    sent = set()
    for index, action in enumerate(schedule):
        if action.key == (SEND_PKT, (src, dst)):
            sent.add(action.payload)
        elif action.key == (RECEIVE_PKT, (src, dst)):
            if action.payload not in sent:
                return PropertyResult.violated(
                    "PL4",
                    f"packet {action.payload} received at event {index} "
                    "without a preceding send",
                )
    return PropertyResult.ok("PL4")


def pl5(schedule: Sequence[Action], src: str, dst: str) -> PropertyResult:
    """(PL5), FIFO: delivered packets are received in send order.

    Assumes (PL2)/(PL3) so that each packet identifies unique send and
    receive events.
    """
    send_order = {}
    for index, action in enumerate(schedule):
        if action.key == (SEND_PKT, (src, dst)):
            send_order.setdefault(action.payload, index)
    last_send_index = -1
    last_packet = None
    for index, action in enumerate(schedule):
        if action.key == (RECEIVE_PKT, (src, dst)):
            packet = action.payload
            send_index = send_order.get(packet)
            if send_index is None:
                continue  # PL4's concern, not FIFO's
            if send_index < last_send_index:
                return PropertyResult.violated(
                    "PL5",
                    f"packet {packet} (sent at {send_index}) received at "
                    f"event {index} after {last_packet} (sent at "
                    f"{last_send_index}): out of FIFO order",
                )
            last_send_index = send_index
            last_packet = packet
    return PropertyResult.ok("PL5")


def pl6(schedule: Sequence[Action], src: str, dst: str) -> PropertyResult:
    """(PL6) liveness: vacuous over finite sequences.

    The property's hypothesis requires infinitely many ``send_pkt``
    events, which no finite sequence has; see
    :func:`pl6_finite_diagnostic` for the quiescent-trace analogue.
    """
    return PropertyResult.ok("PL6")


def pl6_finite_diagnostic(
    schedule: Sequence[Action], src: str, dst: str
) -> PropertyResult:
    """Finite-trace liveness diagnostic for quiescent executions.

    For an execution that has quiesced: if the trace ends in an unbounded
    working interval during which packets were sent but none was ever
    received, a fair infinite extension repeating such sends would
    violate (PL6).  Useful for flagging dead channels in simulation.
    """
    interval = unbounded_working_interval(schedule, (src, dst))
    if interval is None:
        return PropertyResult.ok("PL6-finite")
    start, end = interval
    sends = [
        i
        for i in range(start, end)
        if schedule[i].key == (SEND_PKT, (src, dst))
    ]
    if not sends:
        return PropertyResult.ok("PL6-finite")
    receives = [
        i
        for i in range(sends[0], end)
        if schedule[i].key == (RECEIVE_PKT, (src, dst))
    ]
    if receives:
        return PropertyResult.ok("PL6-finite")
    return PropertyResult.violated(
        "PL6-finite",
        f"{len(sends)} packets sent in the unbounded working interval "
        "but none received",
    )
