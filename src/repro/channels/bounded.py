"""A bounded-capacity non-FIFO lossy channel (Dolev et al., arXiv:1011.3632).

The self-stabilization literature models the data-link medium as a
*bounded-capacity* non-FIFO channel: at most ``capacity`` packets are in
transit at any moment, a send into a full channel is dropped, and
delivery order is adversarial within a bounded reordering window.
``BoundedChannel`` realizes that family alongside the paper's C-hat /
C-bar: capacity is a *hard invariant* of the transition relation (no
reachable state holds more than ``capacity`` buffered packets), and the
adversary (which sends are lost, how deliveries are reordered) is fixed
up front from a seed, so fuzz campaigns replay exactly.

Unlike the permissive channels, whose adversary is a retroactively
rewritten delivery set, the bounded channel keeps an explicit in-transit
buffer.  The seeded plan assigns each send index a *delivery priority*
(its index plus a bounded offset) and a loss verdict; delivery always
picks the buffered packet with the smallest priority, so the channel
drains whenever it is scheduled and retransmitting protocols still
quiesce.  Beyond ``horizon`` the plan is FIFO and lossless (overflow
drops aside), mirroring the delivery-set channels' eventually-clean
tails.

The Lemma 6.x-style surgeries (``make_clean``, ``with_waiting``,
``lose_all_in_transit``) rewrite the buffer instead of a delivery set:
a clean bounded channel is simply an empty buffer whose future sends
bypass the adversarial plan (tracked by ``surgery_floor``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence, Tuple

from ..alphabets import Packet
from ..ioa.actions import Action
from ..ioa.automaton import Automaton
from ..ioa.signature import ActionSignature
from .actions import (
    CRASH,
    FAIL,
    RECEIVE_PKT,
    SEND_PKT,
    WAKE,
    physical_layer_signature,
    receive_pkt,
)
from .permissive import ChannelSurgeryError


@dataclass(frozen=True)
class BoundedChannelState:
    """The state of a bounded-capacity channel.

    ``counter1``/``counter2`` count ``send_pkt``/``receive_pkt`` events
    (matching the permissive channels); ``buffer`` holds the in-transit
    ``(send index, packet)`` pairs in send order; ``dropped`` counts
    overflow drops (sends into a full channel).  ``surgery_floor`` and
    ``forced`` record adversary surgeries: sends with index above a
    positive ``surgery_floor`` bypass the loss/reorder plan, and a
    non-empty ``forced`` pins the exact order of the next deliveries.
    """

    counter1: int = 0
    counter2: int = 0
    buffer: Tuple[Tuple[int, Packet], ...] = ()
    dropped: int = 0
    surgery_floor: int = 0
    forced: Tuple[int, ...] = ()

    def in_transit_indices(self) -> Tuple[int, ...]:
        """Send indices currently buffered, in send order."""
        return tuple(index for index, _ in self.buffer)

    def occupancy(self) -> int:
        """How many packets are in transit."""
        return len(self.buffer)

    def is_clean(self) -> bool:
        """Empty buffer, future sends FIFO and lossless."""
        return not self.buffer and (
            self.surgery_floor >= self.counter1 or self.counter1 == 0
        )


class BoundedChannel(Automaton):
    """A bounded-capacity non-FIFO lossy physical channel.

    ``capacity`` bounds the in-transit buffer (a hard invariant: a send
    into a full buffer is dropped, never queued).  ``loss_rate`` and
    ``reorder_window`` parameterize a seeded adversary plan over send
    indices ``1..horizon``; beyond the horizon the channel is FIFO and
    lossless, which preserves the harness's quiescence guarantee for
    retransmitting protocols.
    """

    fifo_only = False

    def __init__(
        self,
        src: str,
        dst: str,
        seed: int = 0,
        loss_rate: float = 0.0,
        reorder_window: int = 1,
        horizon: int = 1024,
        capacity: int = 4,
        name: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if reorder_window < 1:
            raise ValueError("reorder_window must be positive")
        self.src = src
        self.dst = dst
        self.capacity = capacity
        self.horizon = horizon
        # The whole adversary is fixed here, from the seed alone: which
        # send indices are lost and each index's delivery priority.
        # Nothing downstream may depend on hash() or draw order, so the
        # plan replays identically in any process.
        rng = random.Random(seed)
        lost = []
        offsets = []
        for _ in range(horizon):
            lost.append(rng.random() < loss_rate)
            offsets.append(rng.randrange(reorder_window))
        self._lost = tuple(lost)
        self._offsets = tuple(offsets)
        self._signature = physical_layer_signature(src, dst)
        self.name = name or f"bounded[{src}->{dst},cap={capacity}]"

    # ------------------------------------------------------------------

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> BoundedChannelState:
        return BoundedChannelState()

    def _is_lost(self, state: BoundedChannelState, index: int) -> bool:
        """Does the adversary plan drop this send?

        Surgered states exempt post-surgery sends (``index`` above the
        floor) so a clean channel stays lossless, exactly like the
        rewritten delivery sets' FIFO tails.
        """
        if state.surgery_floor and index > state.surgery_floor:
            return False
        if index > self.horizon:
            return False
        return self._lost[index - 1]

    def _priority(self, state: BoundedChannelState, index: int) -> int:
        """The delivery priority of a buffered send index (smaller first)."""
        if state.surgery_floor and index > state.surgery_floor:
            return index
        if index > self.horizon:
            return index
        return index + self._offsets[index - 1]

    def deliverable(
        self, state: BoundedChannelState
    ) -> Optional[Tuple[int, Packet]]:
        """The unique (send index, packet) the channel delivers next."""
        if state.forced:
            head = state.forced[0]
            for index, packet in state.buffer:
                if index == head:
                    return (index, packet)
            return None
        if not state.buffer:
            return None
        return min(
            state.buffer,
            key=lambda entry: (self._priority(state, entry[0]), entry[0]),
        )

    def transitions(
        self, state: BoundedChannelState, action: Action
    ) -> Tuple[BoundedChannelState, ...]:
        if not self._signature.contains(action):
            return ()
        if action.name == SEND_PKT:
            index = state.counter1 + 1
            if self._is_lost(state, index):
                return (
                    BoundedChannelState(
                        index,
                        state.counter2,
                        state.buffer,
                        state.dropped,
                        state.surgery_floor,
                        state.forced,
                    ),
                )
            if len(state.buffer) >= self.capacity:
                # The hard capacity invariant: a full channel drops.
                return (
                    BoundedChannelState(
                        index,
                        state.counter2,
                        state.buffer,
                        state.dropped + 1,
                        state.surgery_floor,
                        state.forced,
                    ),
                )
            return (
                BoundedChannelState(
                    index,
                    state.counter2,
                    state.buffer + ((index, action.payload),),
                    state.dropped,
                    state.surgery_floor,
                    state.forced,
                ),
            )
        if action.name == RECEIVE_PKT:
            deliverable = self.deliverable(state)
            if deliverable is None or deliverable[1] != action.payload:
                return ()
            index = deliverable[0]
            buffer = tuple(
                entry for entry in state.buffer if entry[0] != index
            )
            forced = state.forced
            if forced and forced[0] == index:
                forced = forced[1:]
            return (
                BoundedChannelState(
                    state.counter1,
                    state.counter2 + 1,
                    buffer,
                    state.dropped,
                    state.surgery_floor,
                    forced,
                ),
            )
        if action.name in (WAKE, FAIL, CRASH):
            return (state,)
        return ()

    def enabled_local_actions(
        self, state: BoundedChannelState
    ) -> Iterable[Action]:
        deliverable = self.deliverable(state)
        if deliverable is not None:
            yield receive_pkt(self.src, self.dst, deliverable[1])

    def task_of(self, action: Action) -> Hashable:
        return (self.name, "deliver")

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, "deliver")]

    # ------------------------------------------------------------------
    # Adversary surgeries (the bounded analogue of Lemmas 6.3, 6.5-6.7)
    # ------------------------------------------------------------------

    def make_clean(self, state: BoundedChannelState) -> BoundedChannelState:
        """Lemma 6.3 analogue: lose everything in transit, then be FIFO.

        Every buffered packet is dropped and future sends bypass the
        adversary plan, so the channel acts FIFO with no losses from now
        on (overflow aside, which an empty buffer makes unreachable
        until ``capacity`` sends race ahead of delivery).
        """
        return BoundedChannelState(
            state.counter1,
            state.counter2,
            (),
            state.dropped,
            state.counter1,
            (),
        )

    def with_waiting(
        self, state: BoundedChannelState, indices: Sequence[int]
    ) -> BoundedChannelState:
        """Lemmas 6.5-6.7 analogue: exactly ``indices`` deliver next, in order.

        The indices must be distinct and currently in transit.  Every
        other buffered packet is lost, and after the forced deliveries
        drain the channel is clean.
        """
        in_transit = {index: packet for index, packet in state.buffer}
        seen = set()
        for index in indices:
            if index not in in_transit:
                raise ChannelSurgeryError(
                    f"send index {index} is not in transit"
                )
            if index in seen:
                raise ChannelSurgeryError(
                    f"send index {index} scheduled twice"
                )
            seen.add(index)
        buffer = tuple(
            (index, in_transit[index]) for index in indices
        )
        return BoundedChannelState(
            state.counter1,
            state.counter2,
            buffer,
            state.dropped,
            state.counter1,
            tuple(indices),
        )

    def lose_all_in_transit(
        self, state: BoundedChannelState
    ) -> BoundedChannelState:
        """Lemma 6.6 with the empty subsequence: lose everything in transit."""
        return self.make_clean(state)
