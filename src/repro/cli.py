"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``list``
    List the available protocols.
``check PROTOCOL``
    Run the hypothesis checkers (message-independence, crashing,
    k-boundedness probe, header space) against a protocol.
``refute-crash PROTOCOL``
    Run the Theorem 7.5 construction and print the certificate.
``refute-headers PROTOCOL``
    Run the Theorem 8.5 construction and print the certificate.
``simulate PROTOCOL``
    Run a seeded scenario over lossy/reordering channels and audit the
    behavior against the DL specification (``--msc`` renders a chart).
``verify PROTOCOL``
    Exhaustive bounded model check: every loss pattern and interleaving
    at small bounds (``--reorder-depth`` maps reordering tolerance).
``experiments``
    Run the experiment suite (E1...) and print/write the result tables.
``growth PROTOCOL``
    Measure distinct-header growth (the Section 9 contrast).
``lint [PROTOCOL ...]``
    Static model audit of the protocol zoo (or the given protocols)
    with ruff-style diagnostics; exits non-zero on findings.

Protocols are named as in ``list``; parameterized families take an
argument after a colon, e.g. ``sliding-window:4``, ``mod-stenning:8``,
``fragmenting:2``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .analysis import check_datalink_trace, measure_header_growth
from .channels import lossy_fifo_channel, reordering_channel
from .datalink import (
    check_crashing,
    check_message_independence,
    probe_k_bound,
)
from .datalink.protocol import DataLinkProtocol
from .impossibility import (
    EngineError,
    refute_bounded_headers,
    refute_crash_tolerance,
)
from .protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    direct_protocol,
    eager_protocol,
    fragmenting_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
    stenning_protocol,
)
from .sim import DataLinkSystem, FaultPlan, delivery_stats, generate_script
from .sim.runner import run_scenario

#: name -> (factory taking an optional integer parameter, description)
REGISTRY: Dict[str, Callable[[Optional[int]], DataLinkProtocol]] = {
    "abp": lambda p: alternating_bit_protocol(),
    "sliding-window": lambda p: sliding_window_protocol(p or 2),
    "stenning": lambda p: stenning_protocol(),
    "mod-stenning": lambda p: modulo_stenning_protocol(p or 4),
    "baratz-segall": lambda p: baratz_segall_protocol(nonvolatile=True),
    "baratz-segall-volatile": lambda p: baratz_segall_protocol(
        nonvolatile=False
    ),
    "fragmenting": lambda p: fragmenting_protocol(
        chunk=p or 1, max_fragments=3
    ),
    "selective-repeat": lambda p: selective_repeat_protocol(p or 2),
    "naive-direct": lambda p: direct_protocol(),
    "naive-eager": lambda p: eager_protocol(),
}


def resolve_protocol(spec: str) -> DataLinkProtocol:
    """Build a protocol from a ``name`` or ``name:param`` spec."""
    name, _, param = spec.partition(":")
    if name not in REGISTRY:
        raise SystemExit(
            f"unknown protocol {name!r}; available: "
            + ", ".join(sorted(REGISTRY))
        )
    parameter = int(param) if param else None
    return REGISTRY[name](parameter)


def cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(REGISTRY):
        protocol = REGISTRY[name](None)
        print(f"{name:24s} {protocol.description}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    print(f"protocol: {protocol.name}")
    independence = check_message_independence(protocol)
    print(
        "message-independent: "
        + ("yes" if independence.independent else f"NO ({independence.detail})")
    )
    crashing = check_crashing(protocol)
    print(
        f"crashing (loses all state on crash): "
        + ("yes" if crashing.crashing else f"no ({crashing.detail})")
    )
    headers = protocol.header_space()
    print(
        "header space: "
        + ("unbounded" if headers is None else f"{len(headers)} headers")
    )
    k_report = probe_k_bound(protocol)
    if k_report.delivered:
        print(f"k-boundedness probe: k = {k_report.k}")
    else:
        print(f"k-boundedness probe: FAILED ({k_report.detail})")
    return 0


def _print_certificate(certificate, as_json: bool = False) -> int:
    if as_json:
        import json

        print(json.dumps(certificate.to_dict(), indent=2))
        return 0 if certificate.validate() else 1
    print(certificate.describe())
    ok = certificate.validate()
    print(f"\nindependently validated: {ok}")
    return 0 if ok else 1


def cmd_refute_crash(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    try:
        certificate = refute_crash_tolerance(
            protocol, message_size=args.message_size
        )
    except EngineError as exc:
        print(f"engine rejected the protocol: {exc}")
        return 2
    return _print_certificate(certificate, args.json)


def cmd_refute_headers(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    try:
        certificate = refute_bounded_headers(
            protocol, k=args.k, message_size=args.message_size
        )
    except EngineError as exc:
        print(f"engine rejected the protocol: {exc}")
        return 2
    return _print_certificate(certificate, args.json)


def cmd_simulate(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    if args.reorder > 1:
        build = lambda src, dst, seed: reordering_channel(  # noqa: E731
            src, dst, seed=seed, loss_rate=args.loss, window=args.reorder
        )
    else:
        build = lambda src, dst, seed: lossy_fifo_channel(  # noqa: E731
            src, dst, seed=seed, loss_rate=args.loss
        )
    system = DataLinkSystem.build(
        protocol,
        build("t", "r", args.seed),
        build("r", "t", args.seed + 1),
    )
    plan = FaultPlan(
        messages=args.messages,
        crash_probability=0.15 if args.crashes else 0.0,
        seed=args.seed,
    )
    script = generate_script(system, plan)
    result = run_scenario(system, script.actions, seed=args.seed)
    stats = delivery_stats(result.fragment)
    print(
        f"sent {stats.sent}, delivered {stats.delivered}, duplicates "
        f"{stats.duplicates}, steps {result.steps}, quiescent "
        f"{result.quiescent}"
    )
    if args.msc:
        from .analysis import render_fragment

        print()
        print(render_fragment(result.fragment))
    report = check_datalink_trace(
        result.behavior, quiescent=result.quiescent
    )
    print()
    print(report.describe())
    return 0 if report.ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import verify_delivery_order

    protocol = resolve_protocol(args.protocol)
    result = verify_delivery_order(
        protocol,
        messages=args.messages,
        capacity=args.capacity,
        reorder_depth=args.reorder_depth,
    )
    scope = "exhaustive" if result.exhaustive else "TRUNCATED"
    kind = (
        "FIFO"
        if args.reorder_depth == 1
        else f"depth-{args.reorder_depth} reordering"
    )
    print(
        f"explored {result.states_explored} states ({scope}) for "
        f"{args.messages} messages over capacity-{args.capacity} "
        f"nondeterministic lossy {kind} channels"
    )
    if result.ok:
        print("invariant holds: in-order, exactly-once delivery")
        return 0
    print("counterexample found:")
    for index, action in enumerate(result.counterexample):
        print(f"  {index}: {action}")
    return 1


def cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis import run_all, to_markdown, to_text

    tables = run_all(only=args.only or None)
    rendered = (
        to_markdown(tables) if args.format == "markdown" else to_text(tables)
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def cmd_growth(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    series = measure_header_growth(
        protocol, checkpoints=tuple(args.checkpoints)
    )
    print(f"{'messages':>8s} {'distinct headers':>16s}")
    for point in series.points:
        print(f"{point.messages:8d} {point.total_distinct:16d}")
    print(f"slope: {series.slope_estimate():.2f} headers/message")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .lint import RULES, lint_targets, target_from, zoo_targets

    if args.list_codes:
        for rule in RULES.values():
            print(
                f"{rule.code}  {rule.severity:7s} {rule.name:32s} "
                f"paper {rule.paper:10s} {rule.summary}"
            )
        return 0

    if args.module:
        import importlib

        module = importlib.import_module(args.module)
        try:
            raw_targets = module.LINT_TARGETS
        except AttributeError:
            raise SystemExit(
                f"module {args.module!r} defines no LINT_TARGETS"
            )
        environment = getattr(module, "ENVIRONMENT", None)
        targets = [
            target_from(obj, environment=environment)
            for obj in raw_targets
        ]
    elif args.protocols:
        targets = [
            target_from(resolve_protocol(spec), name=spec)
            for spec in args.protocols
        ]
    else:
        targets = zoo_targets()

    report = lint_targets(
        targets,
        messages=args.messages,
        max_states=args.max_states,
    )
    if args.select:
        report = report.select(args.select)

    rendered = (
        json.dumps(report.to_dict(), indent=2)
        if args.format == "json"
        else report.render_text()
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        summary = report.summary()
        print(
            f"wrote {args.output}: {summary['findings']} finding(s) "
            f"across {summary['targets']} target(s)"
        )
    else:
        print(rendered)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of Lynch, Mansour & Fekete (1988), "
            "'The Data Link Layer: Two Impossibility Results'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available protocols").set_defaults(
        run=cmd_list
    )

    check = sub.add_parser(
        "check", help="run the theorem-hypothesis checkers"
    )
    check.add_argument("protocol")
    check.set_defaults(run=cmd_check)

    crash = sub.add_parser(
        "refute-crash", help="run the Theorem 7.5 construction"
    )
    crash.add_argument("protocol")
    crash.add_argument("--message-size", type=int, default=0)
    crash.add_argument("--json", action="store_true")
    crash.set_defaults(run=cmd_refute_crash)

    headers = sub.add_parser(
        "refute-headers", help="run the Theorem 8.5 construction"
    )
    headers.add_argument("protocol")
    headers.add_argument("--k", type=int, default=None)
    headers.add_argument("--message-size", type=int, default=0)
    headers.add_argument("--json", action="store_true")
    headers.set_defaults(run=cmd_refute_headers)

    simulate = sub.add_parser(
        "simulate", help="run a seeded scenario and audit the trace"
    )
    simulate.add_argument("protocol")
    simulate.add_argument("--messages", type=int, default=10)
    simulate.add_argument("--loss", type=float, default=0.2)
    simulate.add_argument(
        "--reorder",
        type=int,
        default=1,
        help="reordering window (1 = FIFO)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--crashes", action="store_true", help="inject host crashes"
    )
    simulate.add_argument(
        "--msc",
        action="store_true",
        help="render the run as a message sequence chart",
    )
    simulate.set_defaults(run=cmd_simulate)

    verify = sub.add_parser(
        "verify",
        help="exhaustive bounded model check of delivery correctness",
    )
    verify.add_argument("protocol")
    verify.add_argument("--messages", type=int, default=2)
    verify.add_argument("--capacity", type=int, default=2)
    verify.add_argument(
        "--reorder-depth",
        type=int,
        default=1,
        help="delivery displacement bound (1 = FIFO)",
    )
    verify.set_defaults(run=cmd_verify)

    experiments = sub.add_parser(
        "experiments", help="run the experiment suite and print tables"
    )
    experiments.add_argument(
        "--only",
        nargs="+",
        metavar="ID",
        help="run a subset, e.g. --only E1 E2",
    )
    experiments.add_argument(
        "--format", choices=["text", "markdown"], default="text"
    )
    experiments.add_argument("--output", help="write to a file")
    experiments.set_defaults(run=cmd_experiments)

    growth = sub.add_parser(
        "growth", help="measure distinct-header growth"
    )
    growth.add_argument("protocol")
    growth.add_argument(
        "--checkpoints",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8, 16, 32],
    )
    growth.set_defaults(run=cmd_growth)

    lint = sub.add_parser(
        "lint",
        help="static model audit with ruff-style diagnostics",
    )
    lint.add_argument(
        "protocols",
        nargs="*",
        help="protocol specs to lint (default: the whole zoo)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    lint.add_argument("--output", help="write the report to a file")
    lint.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        help="only report matching codes (prefix match, e.g. REP2)",
    )
    lint.add_argument(
        "--module",
        help="import lint targets from a module's LINT_TARGETS",
    )
    lint.add_argument(
        "--max-states",
        type=int,
        default=2000,
        help="state budget for the bounded semantic sweep",
    )
    lint.add_argument(
        "--messages",
        type=int,
        default=2,
        help="probe messages offered during exploration",
    )
    lint.add_argument(
        "--list-codes",
        action="store_true",
        help="print the rule table and exit",
    )
    lint.set_defaults(run=cmd_lint)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
