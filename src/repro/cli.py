"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``list``
    List the available protocols.
``check PROTOCOL``
    Run the hypothesis checkers (message-independence, crashing,
    k-boundedness probe, header space) against a protocol.
``refute-crash PROTOCOL``
    Run the Theorem 7.5 construction and print the certificate.
``refute-headers PROTOCOL``
    Run the Theorem 8.5 construction and print the certificate.
``simulate PROTOCOL``
    Run a seeded scenario over lossy/reordering channels and audit the
    behavior against the DL specification (``--msc`` renders a chart).
``verify PROTOCOL``
    Exhaustive bounded model check: every loss pattern and interleaving
    at small bounds (``--reorder-depth`` maps reordering tolerance).
``experiments``
    Run the experiment suite (E1...) and print/write the result tables.
``growth PROTOCOL``
    Measure distinct-header growth (the Section 9 contrast).
``lint [PROTOCOL ...]``
    Static model audit of the protocol zoo (or the given protocols)
    with ruff-style diagnostics; exits non-zero on findings.
``fuzz --protocol P --channel C``
    Seeded conformance fuzzing: random fair executions under a fault
    mix, checked against the executable DL/PL oracles; violations are
    shrunk and written as replayable repro files (``--replay FILE``
    re-executes one).
``load --sessions N --steps S``
    Multi-session load generation: N concurrent protocol sessions
    (each its own seeded script + fault schedule) sharded across the
    warm-worker pool and merged deterministically, reporting aggregate
    throughput plus p50/p95/p99 latency and delivery-ratio percentiles.
``trace FILE``
    Summarize a JSONL trace written by ``--trace`` (manifest, counter
    totals, span timings).

Protocols are named as in ``list``; parameterized families take an
argument after a colon, e.g. ``sliding-window:4``, ``mod-stenning:8``,
``fragmenting:2``.

Unified output (the api): every subcommand accepts ``--json`` and then
prints one :class:`~repro.obs.RunReport` envelope -- ``{"command",
"status", "counters", "duration_s", "details"}`` -- whatever the
command (the command-specific payload lives under ``details``).  Exit
codes map from ``status``: ``ok`` is 0, ``violation``/``findings`` are
1, ``error`` is 2.  ``simulate``, ``verify``, ``refute-crash``,
``refute-headers``, ``fuzz`` and ``load`` additionally accept
``--trace OUT.jsonl``, which
records the run's structured event stream (spans, counters, gauges)
closed by a run manifest; inspect it with ``repro trace OUT.jsonl``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import check_datalink_trace, measure_header_growth
from .channels import lossy_fifo_channel, reordering_channel
from .datalink import (
    check_crashing,
    check_message_independence,
    probe_k_bound,
)
from .datalink.protocol import DataLinkProtocol
from .impossibility import (
    EngineError,
    refute_bounded_headers,
    refute_crash_tolerance,
)
from .obs import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_VIOLATION,
    RunManifest,
    RunReport,
    read_events,
    trace_run,
)
from .protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    direct_protocol,
    eager_protocol,
    fragmenting_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
    stenning_protocol,
)
from .sim import DataLinkSystem, FaultPlan, delivery_stats, generate_script
from .sim.runner import run_scenario

#: name -> (factory taking an optional integer parameter, description)
REGISTRY: Dict[str, Callable[[Optional[int]], DataLinkProtocol]] = {
    "abp": lambda p: alternating_bit_protocol(),
    "sliding-window": lambda p: sliding_window_protocol(p or 2),
    "stenning": lambda p: stenning_protocol(),
    "mod-stenning": lambda p: modulo_stenning_protocol(p or 4),
    "baratz-segall": lambda p: baratz_segall_protocol(nonvolatile=True),
    "baratz-segall-volatile": lambda p: baratz_segall_protocol(
        nonvolatile=False
    ),
    "fragmenting": lambda p: fragmenting_protocol(
        chunk=p or 1, max_fragments=3
    ),
    "selective-repeat": lambda p: selective_repeat_protocol(p or 2),
    "naive-direct": lambda p: direct_protocol(),
    "naive-eager": lambda p: eager_protocol(),
}


def resolve_protocol(spec: str) -> DataLinkProtocol:
    """Build a protocol from a ``name`` or ``name:param`` spec."""
    name, _, param = spec.partition(":")
    if name not in REGISTRY:
        raise SystemExit(
            f"unknown protocol {name!r}; available: "
            + ", ".join(sorted(REGISTRY))
        )
    parameter = int(param) if param else None
    return REGISTRY[name](parameter)


# ----------------------------------------------------------------------
# Unified emission and tracing plumbing
# ----------------------------------------------------------------------


def _emit(
    args: argparse.Namespace,
    report: RunReport,
    lines: Sequence[str] = (),
) -> int:
    """Print either the text rendering or the RunReport envelope.

    Under ``--json`` the envelope is the *only* stdout output; the text
    lines are what the command would have printed without it.  The exit
    code always comes from the report's status.
    """
    if getattr(args, "json", False):
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for line in lines:
            print(line)
    return report.exit_code


@contextmanager
def _maybe_traced(
    args: argparse.Namespace,
    command: str,
    protocol: Optional[str] = None,
    seed: Optional[int] = None,
    config: Optional[Dict[str, object]] = None,
):
    """Honor ``--trace PATH``: record the block's event stream + manifest.

    Yields the tracer (or None when tracing was not requested) so
    commands can merge its counter totals into their RunReport.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    with trace_run(
        path, command=command, protocol=protocol, seed=seed, config=config
    ) as tracer:
        yield tracer


def _merge_trace(
    report: RunReport, args: argparse.Namespace, tracer
) -> RunReport:
    """Fold a traced run's counter totals and artifact path into the
    report (tracer counters win: they are a superset of the estimates a
    result object can reconstruct after the fact)."""
    if tracer is not None:
        merged = dict(report.counters)
        merged.update(tracer.snapshot_counters())
        report.counters = merged
        report.artifacts["trace"] = args.trace
    return report


def _warn_serial_fallback(
    args: argparse.Namespace, pool: Dict[str, object]
) -> None:
    """Warn when parallelism was requested but not delivered.

    The results are identical either way (the deterministic-merge
    contract), but the user asked for speed they are not getting, so
    say so once on stderr (and in ``details.pool.mode``).
    """
    if args.workers > 1 and pool.get("mode") != "fork":
        reason = pool.get("fallback_reason", "pool unavailable")
        print(
            f"warning: --workers {args.workers} ran serially "
            f"({reason}); output is unaffected",
            file=sys.stderr,
        )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    lines = []
    details: Dict[str, object] = {}
    for name in sorted(REGISTRY):
        protocol = REGISTRY[name](None)
        lines.append(f"{name:24s} {protocol.description}")
        details[name] = protocol.description
    report = RunReport(
        command="list",
        status=STATUS_OK,
        counters={"protocols": len(REGISTRY)},
        details={"protocols": details},
    )
    return _emit(args, report, lines)


def cmd_check(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    protocol = resolve_protocol(args.protocol)
    independence = check_message_independence(protocol)
    crashing = check_crashing(protocol)
    headers = protocol.header_space()
    k_report = probe_k_bound(protocol)
    lines = [
        f"protocol: {protocol.name}",
        "message-independent: "
        + (
            "yes"
            if independence.independent
            else f"NO ({independence.detail})"
        ),
        "crashing (loses all state on crash): "
        + ("yes" if crashing.crashing else f"no ({crashing.detail})"),
        "header space: "
        + ("unbounded" if headers is None else f"{len(headers)} headers"),
        (
            f"k-boundedness probe: k = {k_report.k}"
            if k_report.delivered
            else f"k-boundedness probe: FAILED ({k_report.detail})"
        ),
    ]
    details: Dict[str, object] = {
        "protocol": protocol.name,
        "message_independent": independence.independent,
        "crashing": crashing.crashing,
        "header_space": None if headers is None else len(headers),
        "k_bound": k_report.k if k_report.delivered else None,
    }
    if not independence.independent:
        details["message_independent_detail"] = independence.detail
    if not crashing.crashing:
        details["crashing_detail"] = crashing.detail
    if not k_report.delivered:
        details["k_bound_detail"] = k_report.detail
    report = RunReport(
        command="check",
        status=STATUS_OK,
        counters={"check.hypotheses": 4},
        duration_s=time.perf_counter() - started,
        details=details,
    )
    return _emit(args, report, lines)


def _run_refutation(
    args: argparse.Namespace,
    command: str,
    construct: Callable[[], "object"],
    config: Dict[str, object],
) -> int:
    """Shared driver for the two impossibility engines."""
    started = time.perf_counter()
    try:
        with _maybe_traced(
            args, command, protocol=args.protocol, config=config
        ) as tracer:
            certificate = construct()
    except EngineError as exc:
        report = RunReport(
            command=command,
            status=STATUS_ERROR,
            duration_s=time.perf_counter() - started,
            details={"protocol": args.protocol, "error": str(exc)},
        )
        if getattr(args, "trace", None):
            report.artifacts["trace"] = args.trace
        return _emit(args, report, [f"engine rejected the protocol: {exc}"])
    report = certificate.report(
        duration_s=time.perf_counter() - started
    )
    report = _merge_trace(report, args, tracer)
    lines = [
        certificate.describe(),
        "",
        f"independently validated: {certificate.validate()}",
    ]
    return _emit(args, report, lines)


def cmd_refute_crash(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    return _run_refutation(
        args,
        "refute-crash",
        lambda: refute_crash_tolerance(
            protocol, message_size=args.message_size
        ),
        {"protocol": args.protocol, "message_size": args.message_size},
    )


def cmd_refute_headers(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol)
    return _run_refutation(
        args,
        "refute-headers",
        lambda: refute_bounded_headers(
            protocol, k=args.k, message_size=args.message_size
        ),
        {
            "protocol": args.protocol,
            "k": args.k,
            "message_size": args.message_size,
        },
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    protocol = resolve_protocol(args.protocol)
    if args.reorder > 1:
        build = lambda src, dst, seed: reordering_channel(  # noqa: E731
            src, dst, seed=seed, loss_rate=args.loss, window=args.reorder
        )
    else:
        build = lambda src, dst, seed: lossy_fifo_channel(  # noqa: E731
            src, dst, seed=seed, loss_rate=args.loss
        )
    system = DataLinkSystem.build(
        protocol,
        build("t", "r", args.seed),
        build("r", "t", args.seed + 1),
    )
    plan = FaultPlan(
        messages=args.messages,
        crash_probability=0.15 if args.crashes else 0.0,
        seed=args.seed,
    )
    config = {
        "protocol": args.protocol,
        "messages": args.messages,
        "loss": args.loss,
        "reorder": args.reorder,
        "crashes": args.crashes,
    }
    with _maybe_traced(
        args, "simulate", protocol.name, args.seed, config
    ) as tracer:
        script = generate_script(system, plan)
        result = run_scenario(system, script.actions, seed=args.seed)
        stats = delivery_stats(result.fragment)
        audit = check_datalink_trace(
            result.behavior, quiescent=result.quiescent
        )
    lines = [
        f"sent {stats.sent}, delivered {stats.delivered}, duplicates "
        f"{stats.duplicates}, steps {result.steps}, quiescent "
        f"{result.quiescent}"
    ]
    if args.msc:
        from .analysis import render_fragment

        lines.append("")
        lines.append(render_fragment(result.fragment))
    lines.append("")
    lines.append(audit.describe())
    report = result.report(duration_s=time.perf_counter() - started)
    report.status = STATUS_OK if audit.ok else STATUS_VIOLATION
    report.details["audit"] = {
        name: audit.results[name].holds for name in sorted(audit.results)
    }
    if not audit.ok:
        report.details["violations"] = [
            {"property": failure.name, "witness": str(failure.witness)}
            for failure in audit.violations
        ]
    report = _merge_trace(report, args, tracer)
    return _emit(args, report, lines)


def cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import verify_delivery_order

    started = time.perf_counter()
    protocol = resolve_protocol(args.protocol)
    config = {
        "protocol": args.protocol,
        "messages": args.messages,
        "capacity": args.capacity,
        "reorder_depth": args.reorder_depth,
    }
    with _maybe_traced(args, "verify", protocol.name, None, config) as tracer:
        result = verify_delivery_order(
            protocol,
            messages=args.messages,
            capacity=args.capacity,
            reorder_depth=args.reorder_depth,
        )
    scope = "exhaustive" if result.exhaustive else "TRUNCATED"
    kind = (
        "FIFO"
        if args.reorder_depth == 1
        else f"depth-{args.reorder_depth} reordering"
    )
    lines = [
        f"explored {result.states_explored} states ({scope}) for "
        f"{args.messages} messages over capacity-{args.capacity} "
        f"nondeterministic lossy {kind} channels"
    ]
    if result.ok:
        lines.append("invariant holds: in-order, exactly-once delivery")
    else:
        lines.append("counterexample found:")
        lines.extend(
            f"  {index}: {action}"
            for index, action in enumerate(result.counterexample)
        )
    report = result.report(duration_s=time.perf_counter() - started)
    report.details["reorder_depth"] = args.reorder_depth
    report = _merge_trace(report, args, tracer)
    return _emit(args, report, lines)


def cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis import run_all, to_markdown, to_text

    started = time.perf_counter()
    tables = run_all(only=args.only or None)
    rendered = (
        to_markdown(tables) if args.format == "markdown" else to_text(tables)
    )
    lines = []
    report = RunReport(
        command="experiments",
        status=STATUS_OK,
        counters={"experiments.tables": len(tables)},
        duration_s=time.perf_counter() - started,
        details={"experiments": [table.ident for table in tables]},
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        lines.append(f"wrote {args.output}")
        report.artifacts["tables"] = args.output
    else:
        lines.append(rendered)
    return _emit(args, report, lines)


def cmd_growth(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    protocol = resolve_protocol(args.protocol)
    series = measure_header_growth(
        protocol, checkpoints=tuple(args.checkpoints)
    )
    lines = [f"{'messages':>8s} {'distinct headers':>16s}"]
    lines.extend(
        f"{point.messages:8d} {point.total_distinct:16d}"
        for point in series.points
    )
    slope = series.slope_estimate()
    lines.append(f"slope: {slope:.2f} headers/message")
    report = RunReport(
        command="growth",
        status=STATUS_OK,
        counters={"growth.checkpoints": len(series.points)},
        duration_s=time.perf_counter() - started,
        details={
            "protocol": protocol.name,
            "slope": slope,
            "points": [
                {
                    "messages": point.messages,
                    "distinct_headers": point.total_distinct,
                }
                for point in series.points
            ],
        },
    )
    return _emit(args, report, lines)


def _split_codes(values) -> List[str]:
    """Flatten ``--select/--ignore`` values: both repeats and commas."""
    codes: List[str] = []
    for value in values or ():
        codes.extend(c for c in value.split(",") if c)
    return codes


def cmd_lint(args: argparse.Namespace) -> int:
    from .lint import RULES, lint_targets, target_from, zoo_targets

    started = time.perf_counter()

    def _lint_error(message: str, **details) -> int:
        """A clean error envelope (exit 2), never a traceback."""
        report = RunReport(
            command="lint",
            status=STATUS_ERROR,
            duration_s=time.perf_counter() - started,
            details={"error": message, **details},
        )
        return _emit(args, report, [f"lint error: {message}"])

    if args.list_codes:
        lines = [
            f"{rule.code}  {rule.severity:7s} {rule.name:32s} "
            f"paper {rule.paper:10s} {rule.summary}"
            for rule in RULES.values()
        ]
        report = RunReport(
            command="lint",
            status=STATUS_OK,
            counters={"lint.rules": len(RULES)},
            details={
                "rules": {
                    rule.code: rule.summary for rule in RULES.values()
                }
            },
        )
        return _emit(args, report, lines)

    # Validate code selections up front: a prefix that matches no
    # registered code is a spelling mistake, not an empty filter.
    selected = _split_codes(args.select)
    ignored = _split_codes(args.ignore)
    for flag, codes in (("--select", selected), ("--ignore", ignored)):
        unknown = [
            code
            for code in codes
            if not any(known.startswith(code) for known in RULES)
        ]
        if unknown:
            return _lint_error(
                f"unknown code(s) for {flag}: {', '.join(unknown)} "
                f"(see repro lint --list-codes)",
                flag=flag,
                unknown=unknown,
            )

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            return _lint_error(
                f"cannot read baseline {args.baseline!r}: {exc}",
                baseline=args.baseline,
            )
        if not isinstance(baseline, dict):
            return _lint_error(
                f"baseline {args.baseline!r} is not a JSON report object",
                baseline=args.baseline,
            )

    evidence = []
    if args.evidence:
        from .conformance import load_evidence

        try:
            evidence = load_evidence(args.evidence)
        except (OSError, ValueError) as exc:
            return _lint_error(
                f"cannot read evidence {args.evidence!r}: {exc}",
                evidence=args.evidence,
            )

    if args.module:
        import importlib

        try:
            module = importlib.import_module(args.module)
        except ImportError as exc:
            return _lint_error(
                f"cannot import module {args.module!r}: {exc}",
                module=args.module,
            )
        try:
            raw_targets = module.LINT_TARGETS
        except AttributeError:
            return _lint_error(
                f"module {args.module!r} defines no LINT_TARGETS",
                module=args.module,
            )
        environment = getattr(module, "ENVIRONMENT", None)
        targets = [
            target_from(obj, environment=environment)
            for obj in raw_targets
        ]
    elif args.protocols:
        targets = [
            target_from(resolve_protocol(spec), name=spec)
            for spec in args.protocols
        ]
    else:
        targets = zoo_targets()

    lint_report = lint_targets(
        targets,
        messages=args.messages,
        max_states=args.max_states,
        deep=args.deep_source,
        evidence=evidence,
    )
    if selected:
        lint_report = lint_report.select(selected)
    if ignored:
        lint_report = lint_report.ignore(ignored)
    if baseline is not None:
        lint_report = lint_report.apply_baseline(baseline)

    report = lint_report.report(
        duration_s=time.perf_counter() - started
    )
    if args.evidence:
        report.counters["lint.evidence_records"] = len(evidence)
    rendered = (
        json.dumps(lint_report.to_dict(), indent=2)
        if args.format == "json"
        else lint_report.render_text()
    )
    lines: List[str] = []
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
        except OSError as exc:
            return _lint_error(
                f"cannot write report to {args.output!r}: {exc}",
                output=args.output,
            )
        summary = lint_report.summary()
        lines.append(
            f"wrote {args.output}: {summary['findings']} finding(s) "
            f"across {summary['targets']} target(s)"
        )
        report.artifacts["report"] = args.output
    else:
        lines.append(rendered)
    return _emit(args, report, lines)


def cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .conformance import (
        ReplayFormatError,
        FuzzConfig,
        append_entries,
        fuzz_campaign,
        load_corpus,
        oracle_catalog,
        replay,
        save_repro,
        with_mix,
    )
    from .conformance.registry import _normalize

    started = time.perf_counter()

    if args.list_oracles:
        catalog = oracle_catalog()
        lines = [
            f"{entry['name']:16s} {entry['layer']:3s} "
            f"{entry['scope']:9s} paper {entry['paper']}"
            for entry in catalog
        ]
        report = RunReport(
            command="fuzz",
            status=STATUS_OK,
            counters={"fuzz.oracles": len(catalog)},
            details={"oracles": catalog},
        )
        return _emit(args, report, lines)

    if args.replay:
        try:
            outcome = replay(args.replay)
        except (ReplayFormatError, KeyError) as exc:
            report = RunReport(
                command="fuzz",
                status=STATUS_ERROR,
                duration_s=time.perf_counter() - started,
                details={"replay": args.replay, "error": str(exc)},
            )
            return _emit(args, report, [f"cannot replay: {exc}"])
        document = outcome.document
        lines = [
            f"replayed {args.replay}: protocol "
            f"{document['protocol']} over {document['channel']}, "
            f"{outcome.script_length}-action script",
        ]
        if outcome.reproduced:
            lines.append(
                f"violation REPRODUCED: {outcome.oracle} "
                f"({document.get('witness', '')})"
            )
            status = STATUS_VIOLATION
        else:
            lines.append(
                f"violation NOT reproduced (expected {outcome.oracle})"
            )
            status = STATUS_ERROR
        report = RunReport(
            command="fuzz",
            status=status,
            counters={
                "fuzz.replay_steps": outcome.scenario.steps,
                "fuzz.oracle_violations": len(outcome.violations),
            },
            duration_s=time.perf_counter() - started,
            details={
                "replay": args.replay,
                "oracle": outcome.oracle,
                "reproduced": outcome.reproduced,
                "violations": [v.describe() for v in outcome.violations],
            },
        )
        return _emit(args, report, lines)

    if not args.protocol:
        raise SystemExit("fuzz requires --protocol (or --replay/--list-oracles)")

    try:
        config = with_mix(FuzzConfig(), args.mix)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    overrides = {
        "runs": args.runs,
        "messages": args.messages,
        "shrink": not args.no_shrink,
        "shrink_budget": args.shrink_budget,
        "deep_oracles": args.deep,
        "max_steps": args.max_steps,
        "init_mode": args.init_mode,
        "capacity": args.capacity,
    }
    config = dataclasses.replace(config, **overrides)
    config_dict = dataclasses.asdict(config)

    # Corpus entries for this (protocol, channel) are replayed first:
    # their sub-seeds occupy run indices 0..k-1 ahead of the freshly
    # derived schedule.
    replay_subseeds = []
    if args.corpus:
        for entry in load_corpus(args.corpus):
            if _normalize(entry.protocol) != _normalize(args.protocol):
                continue
            if _normalize(entry.channel) != _normalize(args.channel):
                continue
            if entry.subseeds not in replay_subseeds:
                replay_subseeds.append(entry.subseeds)

    with _maybe_traced(
        args, "fuzz", args.protocol, args.seed, config_dict
    ) as tracer:
        try:
            campaign = fuzz_campaign(
                args.protocol,
                args.channel,
                args.seed,
                config,
                replay_subseeds=replay_subseeds,
                workers=args.workers,
                run_timeout=args.run_timeout,
                batch_size=args.batch_size,
            )
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))

    _warn_serial_fallback(args, campaign.pool)

    out_dir = Path(args.out)
    repro_paths = []
    for violation in campaign.violations:
        name = (
            f"repro-{args.protocol}-{args.channel}-seed{args.seed}"
            f"-run{violation.run_index}-{violation.violation.oracle}.json"
        ).replace("_", "-")
        repro_paths.append(str(save_repro(out_dir / name, violation.repro)))
    # Only freshly derived runs may enter the corpus: replayed entries
    # would otherwise duplicate themselves on every campaign.
    corpus_new = [
        entry
        for entry in campaign.corpus
        if entry.subseeds not in replay_subseeds
    ]
    if args.corpus and corpus_new:
        append_entries(args.corpus, corpus_new)

    evidence_record = None
    if args.evidence:
        from .conformance import append_evidence, evidence_from_campaign

        evidence_record = evidence_from_campaign(campaign, mix=args.mix)
        append_evidence(args.evidence, [evidence_record])

    lines = [
        f"fuzzed {args.protocol} over {args.channel} "
        f"(seed {args.seed}, {len(campaign.runs)} runs, mix "
        f"{args.mix}): {len(campaign.violations)} violation(s), "
        f"{campaign.states_interned} distinct states, "
        f"{campaign.oracle_checks} oracle checks"
    ]
    if replay_subseeds:
        lines.append(
            f"  corpus: replayed {len(replay_subseeds)} entries first"
        )
    if campaign.failed_runs:
        lines.append(
            f"  {campaign.failed_runs} run(s) failed "
            f"(contained; see fuzz.failed_runs)"
        )
    for violation, path in zip(campaign.violations, repro_paths):
        lines.append(
            f"  run {violation.run_index}: "
            f"{violation.violation.describe()}"
        )
        lines.append(
            f"    shrunk {violation.script_length} -> "
            f"{violation.shrunk_length} actions; repro: {path}"
        )
    if campaign.deep:
        lines.append(f"  deep oracles: {campaign.deep}")
    if not campaign.violations:
        lines.append("  all oracles held on every run")
    if args.corpus and corpus_new:
        lines.append(
            f"  corpus: +{len(corpus_new)} entries -> {args.corpus}"
        )
    if evidence_record is not None:
        lines.append(
            f"  evidence: recorded {evidence_record.protocol} over "
            f"{evidence_record.channel} "
            f"({evidence_record.violations} violation(s)) "
            f"-> {args.evidence}"
        )

    report = campaign.report()
    report.duration_s = time.perf_counter() - started
    stabilization = report.details.get("stabilization")
    if stabilization:
        lines.append(
            f"  stabilization_time p50={stabilization['p50']} "
            f"p95={stabilization['p95']} p99={stabilization['p99']} "
            f"max={stabilization['max']} "
            f"({stabilization['converged_runs']}/"
            f"{stabilization['measured_runs']} runs converged)"
        )
    if args.corpus:
        report.details["corpus_replayed"] = len(replay_subseeds)
    if evidence_record is not None:
        report.details["evidence"] = evidence_record.to_dict()
        report.artifacts["evidence"] = args.evidence
    for index, path in enumerate(repro_paths):
        report.artifacts[f"repro_{index}"] = path
    if args.corpus and corpus_new:
        report.artifacts["corpus"] = args.corpus
    report = _merge_trace(report, args, tracer)
    return _emit(args, report, lines)


def cmd_load(args: argparse.Namespace) -> int:
    from .sim.load import LoadConfig, run_load, with_load_mix

    started = time.perf_counter()
    try:
        config = with_load_mix(
            LoadConfig(sessions=args.sessions, messages=args.steps),
            args.mix,
        )
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    config_dict = dataclasses.asdict(config)

    with _maybe_traced(
        args, "load", args.protocol, args.seed, config_dict
    ) as tracer:
        try:
            result = run_load(
                args.protocol,
                args.channel,
                args.seed,
                config,
                workers=args.workers,
                run_timeout=args.run_timeout,
                batch_size=args.batch_size,
            )
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))

    _warn_serial_fallback(args, result.pool)

    report = result.report()
    report.duration_s = time.perf_counter() - started
    counters = report.counters
    latency = report.details["latency"]
    ratio = report.details["delivery_ratio"]
    throughput = report.details["throughput"]
    pool = report.details["pool"]
    lines = [
        f"load: {counters['load.sessions']} sessions x "
        f"{config.messages} messages, {args.protocol} over "
        f"{args.channel} (seed {args.seed}, mix {args.mix})",
        f"  delivered {counters['load.messages_delivered']}/"
        f"{counters['load.messages_sent']} messages "
        f"({counters['load.duplicate_deliveries']} duplicates) in "
        f"{counters['load.steps']} steps",
        f"  latency (steps): p50 {latency['p50']}, "
        f"p95 {latency['p95']}, p99 {latency['p99']}, "
        f"max {latency['max']}",
        f"  delivery ratio: p50 {ratio['p50']}, p95 {ratio['p95']}, "
        f"p99 {ratio['p99']}, min {ratio['min']}",
        f"  throughput: {throughput['sessions_per_sec']} sessions/s, "
        f"{throughput['steps_per_sec']} steps/s "
        f"({pool['mode']}, {pool['workers']} worker(s), "
        f"{pool['batches']} shard(s))",
    ]
    if result.failed_sessions:
        lines.append(
            f"  {result.failed_sessions} session(s) failed "
            f"({result.timeouts} timed out; contained, see "
            f"load.failed_sessions)"
        )
    report = _merge_trace(report, args, tracer)
    return _emit(args, report, lines)


def cmd_trace(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    try:
        events = read_events(args.file)
    except (OSError, ValueError, KeyError) as exc:
        report = RunReport(
            command="trace",
            status=STATUS_ERROR,
            details={"file": args.file, "error": str(exc)},
        )
        return _emit(args, report, [f"cannot read trace: {exc}"])
    by_kind: Dict[str, int] = {}
    counters: Dict[str, float] = {}
    spans: Dict[str, Dict[str, float]] = {}
    for event in events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        if event.kind == "counter":
            counters[event.name] = counters.get(event.name, 0) + (
                event.value or 0
            )
        elif event.kind == "span_end":
            entry = spans.setdefault(
                event.name, {"count": 0, "total_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += event.value or 0.0
    counters = {
        name: int(total) if float(total).is_integer() else total
        for name, total in counters.items()
    }
    manifest = RunManifest.find(events)
    lines = [f"{args.file}: {len(events)} events"]
    if manifest is not None:
        lines.append(
            f"manifest: command={manifest.command} "
            f"protocol={manifest.protocol} seed={manifest.seed} "
            f"config_hash={manifest.config_hash} "
            f"wall={manifest.wall_s:.3f}s cpu={manifest.cpu_s:.3f}s "
            f"status={manifest.status}"
        )
    if spans:
        lines.append("spans:")
        for name in sorted(spans):
            entry = spans[name]
            lines.append(
                f"  {name:24s} x{int(entry['count']):<6d} "
                f"total {entry['total_s']:.6f}s"
            )
    if counters:
        lines.append("counters:")
        lines.extend(
            f"  {name:32s} {counters[name]:g}" for name in sorted(counters)
        )
    details: Dict[str, object] = {
        "file": args.file,
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items())),
        "spans": {name: spans[name] for name in sorted(spans)},
    }
    if manifest is not None:
        details["manifest"] = manifest.to_dict()
    report = RunReport(
        command="trace",
        status=STATUS_OK,
        counters=counters,
        duration_s=time.perf_counter() - started,
        details=details,
    )
    return _emit(args, report, lines)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


# Shared flag definitions, declared once as argparse *parent parsers*
# so every subcommand that opts in exposes identical names, defaults
# and help text (the json/trace/pool wiring used to be copy-pasted per
# subparser and drifted).


def _json_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--json",
        action="store_true",
        help="print the unified RunReport envelope instead of text",
    )
    return parent


def _trace_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="record the structured event stream (plus a run manifest) "
        "to this JSONL file",
    )
    return parent


def _pool_parent() -> argparse.ArgumentParser:
    """The batched warm-worker pool knobs shared by ``fuzz`` and
    ``load`` (both run on the same partitioned execution engine)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard batched runs across N persistent forked workers "
        "(deterministic merge: output is byte-identical to --workers 1)",
    )
    parent.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="runs per worker task (default: auto-sized from runs and "
        "workers; batching amortizes fork/IPC overhead and never "
        "changes the output)",
    )
    parent.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per run; a run that exceeds it is "
        "recorded as failed instead of hanging the campaign",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of Lynch, Mansour & Fekete (1988), "
            "'The Data Link Layer: Two Impossibility Results'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    json_flags = _json_parent()
    trace_flags = _trace_parent()
    pool_flags = _pool_parent()

    listing = sub.add_parser(
        "list", help="list available protocols", parents=[json_flags]
    )
    listing.set_defaults(run=cmd_list)

    check = sub.add_parser(
        "check",
        help="run the theorem-hypothesis checkers",
        parents=[json_flags],
    )
    check.add_argument("protocol")
    check.set_defaults(run=cmd_check)

    crash = sub.add_parser(
        "refute-crash",
        help="run the Theorem 7.5 construction",
        parents=[json_flags, trace_flags],
    )
    crash.add_argument("protocol")
    crash.add_argument("--message-size", type=int, default=0)
    crash.set_defaults(run=cmd_refute_crash)

    headers = sub.add_parser(
        "refute-headers",
        help="run the Theorem 8.5 construction",
        parents=[json_flags, trace_flags],
    )
    headers.add_argument("protocol")
    headers.add_argument("--k", type=int, default=None)
    headers.add_argument("--message-size", type=int, default=0)
    headers.set_defaults(run=cmd_refute_headers)

    simulate = sub.add_parser(
        "simulate",
        help="run a seeded scenario and audit the trace",
        parents=[json_flags, trace_flags],
    )
    simulate.add_argument("protocol")
    simulate.add_argument("--messages", type=int, default=10)
    simulate.add_argument("--loss", type=float, default=0.2)
    simulate.add_argument(
        "--reorder",
        type=int,
        default=1,
        help="reordering window (1 = FIFO)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--crashes", action="store_true", help="inject host crashes"
    )
    simulate.add_argument(
        "--msc",
        action="store_true",
        help="render the run as a message sequence chart",
    )
    simulate.set_defaults(run=cmd_simulate)

    verify = sub.add_parser(
        "verify",
        help="exhaustive bounded model check of delivery correctness",
        parents=[json_flags, trace_flags],
    )
    verify.add_argument("protocol")
    verify.add_argument("--messages", type=int, default=2)
    verify.add_argument("--capacity", type=int, default=2)
    verify.add_argument(
        "--reorder-depth",
        type=int,
        default=1,
        help="delivery displacement bound (1 = FIFO)",
    )
    verify.set_defaults(run=cmd_verify)

    experiments = sub.add_parser(
        "experiments",
        help="run the experiment suite and print tables",
        parents=[json_flags],
    )
    experiments.add_argument(
        "--only",
        nargs="+",
        metavar="ID",
        help="run a subset, e.g. --only E1 E2",
    )
    experiments.add_argument(
        "--format", choices=["text", "markdown"], default="text"
    )
    experiments.add_argument("--output", help="write to a file")
    experiments.set_defaults(run=cmd_experiments)

    growth = sub.add_parser(
        "growth",
        help="measure distinct-header growth",
        parents=[json_flags],
    )
    growth.add_argument("protocol")
    growth.add_argument(
        "--checkpoints",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8, 16, 32],
    )
    growth.set_defaults(run=cmd_growth)

    lint = sub.add_parser(
        "lint",
        help="static model audit with ruff-style diagnostics",
        parents=[json_flags],
    )
    lint.add_argument(
        "protocols",
        nargs="*",
        help="protocol specs to lint (default: the whole zoo)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    lint.add_argument("--output", help="write the report to a file")
    lint.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        help="only report matching codes (prefix match, e.g. REP2)",
    )
    lint.add_argument(
        "--ignore",
        nargs="+",
        metavar="CODE",
        help="suppress matching codes (prefix match, comma-separable)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in a previous JSON report",
    )
    lint.add_argument(
        "--deep-source",
        action="store_true",
        help=(
            "run the interprocedural REP3xx analyses (taint, interval, "
            "crash-escape) and the theorem contradiction gate"
        ),
    )
    lint.add_argument(
        "--evidence",
        metavar="FILE",
        help=(
            "JSONL fuzz-evidence file (repro fuzz --evidence) for the "
            "REP304 contradiction gate"
        ),
    )
    lint.add_argument(
        "--module",
        "--from-module",
        dest="module",
        help="import lint targets from a module's LINT_TARGETS",
    )
    lint.add_argument(
        "--max-states",
        type=int,
        default=2000,
        help="state budget for the bounded semantic sweep",
    )
    lint.add_argument(
        "--messages",
        type=int,
        default=2,
        help="probe messages offered during exploration",
    )
    lint.add_argument(
        "--list-codes",
        action="store_true",
        help="print the rule table and exit",
    )
    lint.set_defaults(run=cmd_lint)

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded conformance fuzzing against the DL/PL oracles",
        parents=[json_flags, trace_flags, pool_flags],
    )
    fuzz.add_argument(
        "--protocol",
        help="fuzz-registry protocol name (e.g. alternating_bit, naive)",
    )
    fuzz.add_argument(
        "--channel",
        default="nonfifo",
        help="channel family: fifo (C-hat), nonfifo (C-bar), perfect, "
        "bounded-nonfifo (bounded-capacity lossy non-FIFO)",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--runs", type=int, default=20, help="fuzz runs per campaign"
    )
    fuzz.add_argument(
        "--messages", type=int, default=6, help="messages per run script"
    )
    fuzz.add_argument(
        "--mix",
        default="default",
        help="fault mix: default, clean, drop-flood, reorder-flood, "
        "crash-storm, link-flap, link-partition",
    )
    fuzz.add_argument(
        "--init-mode",
        choices=("clean", "arbitrary"),
        default="clean",
        help="arbitrary starts each run from a seeded corrupted state "
        "and checks the stabilization oracles instead of DL/PL",
    )
    fuzz.add_argument(
        "--capacity",
        type=int,
        default=4,
        help="buffer capacity for the bounded-nonfifo channel",
    )
    fuzz.add_argument(
        "--max-steps",
        type=int,
        default=60_000,
        help="step budget per run",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip counterexample shrinking",
    )
    fuzz.add_argument(
        "--shrink-budget",
        type=int,
        default=400,
        help="max re-executions per shrink",
    )
    fuzz.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-protocol oracles (message "
        "independence, k-bound probe)",
    )
    fuzz.add_argument(
        "--out",
        default="fuzz-out",
        metavar="DIR",
        help="directory for replayable repro files",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="FILE.jsonl",
        help="corpus registry: matching entries are replayed first, "
        "and this campaign's interesting seeds are appended",
    )
    fuzz.add_argument(
        "--evidence",
        metavar="FILE.jsonl",
        help="append this campaign's outcome as an evidence record "
        "consumed by the repro lint --deep-source contradiction gate",
    )
    fuzz.add_argument(
        "--replay",
        metavar="REPRO.json",
        help="re-execute a repro file instead of fuzzing",
    )
    fuzz.add_argument(
        "--list-oracles",
        action="store_true",
        help="print the oracle catalog and exit",
    )
    fuzz.set_defaults(run=cmd_fuzz)

    load = sub.add_parser(
        "load",
        help="multi-session load generation over the session façade",
        parents=[json_flags, trace_flags, pool_flags],
    )
    load.add_argument(
        "--sessions",
        type=int,
        default=100,
        metavar="N",
        help="concurrent protocol sessions to run",
    )
    load.add_argument(
        "--steps",
        type=int,
        default=4,
        metavar="S",
        help="fresh messages each session's script offers",
    )
    load.add_argument(
        "--protocol",
        default="alternating_bit",
        help="fuzz-registry protocol name (e.g. alternating_bit, "
        "stenning)",
    )
    load.add_argument(
        "--channel",
        default="fifo",
        help="channel family: fifo (C-hat), nonfifo (C-bar), perfect",
    )
    load.add_argument(
        "--fault-mix",
        dest="mix",
        default="default",
        help="fault mix: default, clean, drop-flood, reorder-flood, "
        "crash-storm",
    )
    load.add_argument("--seed", type=int, default=0)
    load.set_defaults(run=cmd_load)

    trace = sub.add_parser(
        "trace",
        help="summarize a JSONL trace written by --trace",
        parents=[json_flags],
    )
    trace.add_argument("file")
    trace.set_defaults(run=cmd_trace)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
