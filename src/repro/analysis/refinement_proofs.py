"""Refinement proofs: structural ``solves`` for concrete protocols.

The sampled harness checks behaviors; the refinement machinery of
:mod:`repro.ioa.refinement` proves inclusion structurally.  This module
instantiates it for the data link layer:

* :class:`ReliableLinkSpec` -- the one-queue specification automaton:
  ``send_msg`` appends, ``receive_msg`` pops the head.  Its behaviors
  are exactly the in-order, exactly-once delivery behaviors.
* :func:`verify_abp_refinement` -- proves (exhaustively, at bounds)
  that the alternating-bit protocol composed with *arbitrary* bounded
  nondeterministic lossy FIFO channels refines the specification, via
  the classical mapping: the abstract queue is the receiver inbox
  followed by the unacknowledged transmitter queue (dropping its head
  when the receiver has already accepted it -- the ``expected != bit``
  case).

The same check applied to the non-deduplicating strawman fails with a
concrete non-simulable step, which is the structural reading of its
duplicate deliveries.
"""

from __future__ import annotations

from typing import Callable, Iterable, Tuple

from ..alphabets import Message, MessageFactory
from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State
from ..ioa.composition import Composition
from ..ioa.refinement import RefinementResult, check_refinement
from ..ioa.signature import ActionSignature
from ..ioa.actions import action_family
from ..channels.nondet import NondetLossyFifoChannel
from ..datalink.actions import RECEIVE_MSG, SEND_MSG
from ..datalink.protocol import DataLinkProtocol
from .model_check import ScriptedEnvironment


class ReliableLinkSpec(Automaton):
    """The data link layer as a single reliable FIFO queue."""

    def __init__(self, t: str = "t", r: str = "r"):
        self.t = t
        self.r = r
        self._signature = ActionSignature.make(
            inputs=[action_family(SEND_MSG, t, r)],
            outputs=[action_family(RECEIVE_MSG, t, r)],
        )
        self.name = "reliable-link-spec"

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> Tuple[Message, ...]:
        return ()

    def transitions(
        self, state: Tuple[Message, ...], action: Action
    ) -> Tuple[Tuple[Message, ...], ...]:
        if action.key == (SEND_MSG, (self.t, self.r)):
            return (state + (action.payload,),)
        if action.key == (RECEIVE_MSG, (self.t, self.r)):
            if state and state[0] == action.payload:
                return (state[1:],)
            return ()
        return ()

    def enabled_local_actions(
        self, state: Tuple[Message, ...]
    ) -> Iterable[Action]:
        if state:
            from ..datalink.actions import receive_msg

            yield receive_msg(self.t, self.r, state[0])


def _closed_system(
    protocol: DataLinkProtocol,
    messages: Tuple[Message, ...],
    capacity: int,
) -> Composition:
    """Protocol + bounded nondet channels + scripted environment."""
    t, r = "t", "r"
    transmitter, receiver = protocol.build(t, r, ghost_uids=False)
    return Composition(
        [
            transmitter,
            receiver,
            NondetLossyFifoChannel(t, r, capacity=capacity),
            NondetLossyFifoChannel(r, t, capacity=capacity),
            ScriptedEnvironment(t, r, messages),
        ],
        name=f"refine({protocol.name})",
        # The refinement walk revisits component slices constantly;
        # memoized composition stepping makes those queries cache hits.
        memoize=True,
    )


def abp_mapping(state: State) -> Tuple[Message, ...]:
    """The classical ABP refinement mapping.

    The abstract queue is the receiver's undelivered inbox followed by
    the transmitter's unacknowledged queue; when the receiver has
    already accepted the queue head (its expected bit differs from the
    transmitter's current bit) that head is represented by the inbox
    copy and dropped from the queue part.
    """
    transmitter_core = state[0].core
    receiver_core = state[1].core
    queue = transmitter_core.queue
    head_accepted = (
        bool(queue)
        and receiver_core.expected != transmitter_core.bit
    )
    pending = queue[1:] if head_accepted else queue
    return tuple(receiver_core.inbox) + tuple(pending)


def eager_mapping(state: State) -> Tuple[Message, ...]:
    """The analogous (and doomed) mapping for the eager strawman."""
    transmitter_core = state[0].core
    receiver_core = state[1].core
    inbox = tuple(receiver_core.inbox)
    pending = tuple(
        m for m in transmitter_core.queue if m not in inbox
    )
    return inbox + pending


def verify_refinement(
    protocol: DataLinkProtocol,
    mapping: Callable[[State], Tuple[Message, ...]],
    messages: int = 2,
    capacity: int = 2,
    max_states: int = 200_000,
) -> RefinementResult:
    """Check a protocol's composition against :class:`ReliableLinkSpec`."""
    factory = MessageFactory(label="q")
    batch = factory.fresh_many(messages)
    implementation = _closed_system(protocol, batch, capacity)
    return check_refinement(
        implementation,
        ReliableLinkSpec(),
        mapping,
        max_states=max_states,
    )


def verify_abp_refinement(
    messages: int = 2, capacity: int = 2
) -> RefinementResult:
    """Prove ABP refines the reliable link at the given bounds."""
    from ..protocols import alternating_bit_protocol

    return verify_refinement(
        alternating_bit_protocol(), abp_mapping, messages, capacity
    )
