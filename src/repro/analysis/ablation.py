"""Ablation: how much reordering can bounded headers survive?

Theorem 8.5 needs channels that may reorder *arbitrarily*.  The paper's
footnote 1 observes the complementary fact: if packet lifetime on the
link is bounded, bounded headers become possible.  This ablation maps
the empirical boundary: for the modulo-Stenning family (headers modulo
``N``) it sweeps the channel's reordering displacement ``W`` and counts
specification violations over seeded adversaries.

Expected shape: with ``W`` small relative to ``N`` no violations occur
(a stale sequence number cannot alias ``expected`` modulo ``N`` within
the displacement window), violations appear as ``W`` grows past ``N``,
and true Stenning (``N = infinity``) never fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..alphabets import MessageFactory
from ..channels.scripted import reordering_channel
from ..datalink.modules import wdl_module
from ..datalink.protocol import DataLinkProtocol
from ..sim.network import DataLinkSystem
from ..sim.runner import run_scenario


@dataclass
class AblationCell:
    """One (protocol, displacement) cell of the grid."""

    protocol_name: str
    modulus: Optional[int]  # None for unbounded headers
    displacement: int
    runs: int
    violations: int
    failing_seeds: Tuple[int, ...] = ()

    @property
    def violation_ratio(self) -> float:
        return self.violations / self.runs if self.runs else 0.0


@dataclass
class AblationGrid:
    """The full sweep result."""

    cells: Tuple[AblationCell, ...]

    def cell(self, modulus: Optional[int], displacement: int) -> AblationCell:
        for cell in self.cells:
            if (
                cell.modulus == modulus
                and cell.displacement == displacement
            ):
                return cell
        raise KeyError((modulus, displacement))

    def render(self) -> str:
        """ASCII table: rows = modulus, columns = displacement."""
        displacements = sorted({c.displacement for c in self.cells})
        moduli = sorted(
            {c.modulus for c in self.cells},
            key=lambda m: (m is None, m),
        )
        width = 7
        header = "modulus".ljust(12) + "".join(
            f"W={d}".rjust(width) for d in displacements
        )
        lines = [header, "-" * len(header)]
        for modulus in moduli:
            label = "unbounded" if modulus is None else f"N={modulus}"
            row = label.ljust(12)
            for displacement in displacements:
                cell = self.cell(modulus, displacement)
                row += (
                    f"{cell.violations}/{cell.runs}".rjust(width)
                )
            lines.append(row)
        return "\n".join(lines)


def _run_once(
    protocol: DataLinkProtocol,
    displacement: int,
    seed: int,
    messages: int,
    max_steps: int,
) -> bool:
    """Run one seeded scenario; True iff the behavior violates WDL."""
    system = DataLinkSystem.build(
        protocol,
        reordering_channel(
            "t", "r", seed=seed, loss_rate=0.15, window=displacement
        ),
        reordering_channel(
            "r", "t", seed=seed + 7919, loss_rate=0.15, window=displacement
        ),
    )
    factory = MessageFactory()
    script = [system.wake_t(), system.wake_r()] + [
        system.send(m) for m in factory.fresh_many(messages)
    ]
    result = run_scenario(
        system, script, seed=seed, max_steps=max_steps
    )
    module = wdl_module("t", "r", quiescent=result.quiescent)
    return not module.contains(result.behavior) or not result.quiescent


def reordering_tolerance_grid(
    protocol_for_modulus: Callable[[Optional[int]], DataLinkProtocol],
    moduli: Sequence[Optional[int]],
    displacements: Sequence[int],
    seeds: Sequence[int] = tuple(range(10)),
    messages: int = 12,
    max_steps: int = 300_000,
) -> AblationGrid:
    """Sweep (modulus x displacement), counting WDL violations.

    ``protocol_for_modulus(None)`` should build the unbounded-header
    member of the family (true Stenning).
    """
    cells: List[AblationCell] = []
    for modulus in moduli:
        protocol = protocol_for_modulus(modulus)
        for displacement in displacements:
            failing = tuple(
                seed
                for seed in seeds
                if _run_once(
                    protocol_for_modulus(modulus),
                    displacement,
                    seed,
                    messages,
                    max_steps,
                )
            )
            cells.append(
                AblationCell(
                    protocol_name=protocol.name,
                    modulus=modulus,
                    displacement=displacement,
                    runs=len(seeds),
                    violations=len(failing),
                    failing_seeds=failing,
                )
            )
    return AblationGrid(tuple(cells))
