"""Exhaustive bounded model checking of data link protocols.

Closes a protocol composition with (a) two nondeterministic lossy FIFO
channels of bounded capacity and (b) a scripted environment automaton
that wakes both stations, submits a fixed batch of messages, and
records every delivery it observes.  The resulting system is a closed,
finite-state I/O automaton, so :func:`repro.ioa.explorer.explore`
enumerates *every* reachable state -- all loss patterns, all
interleavings -- and checks the delivery-correctness invariant at each:

    the recorded delivery sequence is always a prefix of the submitted
    message sequence (in order, no duplicates, no inventions).

This complements the randomized harness (which samples behaviors) and
the impossibility engines (which construct specific adversarial ones):
for small bounds it is a proof over the bounded space.  The (PL2) ghost
uids are disabled during exploration -- they are a proof device that
would make the space infinite -- so the checked system is the protocol
exactly as it would run on a wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Tuple

from ..alphabets import Message, MessageFactory
from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State
from ..ioa.composition import Composition
from ..ioa.explorer import ExplorationResult, explore
from ..ioa.signature import ActionSignature
from ..channels.nondet import NondetLossyFifoChannel
from ..datalink.actions import RECEIVE_MSG, SEND_MSG, send_msg
from ..channels.actions import WAKE, wake
from ..datalink.protocol import DataLinkProtocol
from ..ioa.actions import action_family


@dataclass(frozen=True)
class EnvState:
    """Environment bookkeeping: what was sent and what came back."""

    woke_t: bool = False
    woke_r: bool = False
    sent: int = 0
    delivered: Tuple[Message, ...] = ()


class ScriptedEnvironment(Automaton):
    """Closes the system: wakes, submits messages, records deliveries."""

    def __init__(self, t: str, r: str, messages: Tuple[Message, ...]):
        self.t = t
        self.r = r
        self.messages = messages
        self._signature = ActionSignature.make(
            inputs=[action_family(RECEIVE_MSG, t, r)],
            outputs=[
                action_family(SEND_MSG, t, r),
                action_family(WAKE, t, r),
                action_family(WAKE, r, t),
            ],
        )
        self.name = "environment"

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> EnvState:
        return EnvState()

    def transitions(self, state: EnvState, action: Action) -> Tuple[EnvState, ...]:
        if action.key == (WAKE, (self.t, self.r)):
            if state.woke_t:
                return ()
            return (EnvState(True, state.woke_r, state.sent, state.delivered),)
        if action.key == (WAKE, (self.r, self.t)):
            if state.woke_r:
                return ()
            return (EnvState(state.woke_t, True, state.sent, state.delivered),)
        if action.key == (SEND_MSG, (self.t, self.r)):
            if not (state.woke_t and state.woke_r):
                return ()
            if state.sent >= len(self.messages):
                return ()
            if action.payload != self.messages[state.sent]:
                return ()
            return (
                EnvState(
                    True, True, state.sent + 1, state.delivered
                ),
            )
        if action.key == (RECEIVE_MSG, (self.t, self.r)):
            return (
                EnvState(
                    state.woke_t,
                    state.woke_r,
                    state.sent,
                    state.delivered + (action.payload,),
                ),
            )
        return ()

    def enabled_local_actions(self, state: EnvState) -> Iterable[Action]:
        if not state.woke_t:
            yield wake(self.t, self.r)
        if not state.woke_r:
            yield wake(self.r, self.t)
        if (
            state.woke_t
            and state.woke_r
            and state.sent < len(self.messages)
        ):
            yield send_msg(self.t, self.r, self.messages[state.sent])

    def task_of(self, action: Action) -> Hashable:
        return (self.name, "drive")

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, "drive")]


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive bounded verification."""

    protocol_name: str
    messages: int
    capacity: int
    states_explored: int
    exhaustive: bool  # False when a bound was hit before exhaustion
    counterexample: Optional[Tuple[Action, ...]] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def report(self, duration_s: float = 0.0) -> "RunReport":
        """This result as the unified :class:`~repro.obs.RunReport`."""
        from ..obs import STATUS_OK, STATUS_VIOLATION, RunReport

        details = {
            "protocol": self.protocol_name,
            "messages": self.messages,
            "capacity": self.capacity,
            "exhaustive": self.exhaustive,
        }
        if self.counterexample is not None:
            details["counterexample"] = [
                str(action) for action in self.counterexample
            ]
        return RunReport(
            command="verify",
            status=STATUS_OK if self.ok else STATUS_VIOLATION,
            counters={"explore.states": self.states_explored},
            duration_s=duration_s,
            details=details,
        )


def build_closed_system(
    protocol: DataLinkProtocol,
    messages: int = 2,
    capacity: int = 2,
    reorder_depth: int = 1,
    memoize: bool = True,
):
    """The closed system used for exhaustive verification.

    Returns ``(composition, invariant, batch)``: the protocol composed
    with two bounded nondeterministic lossy channels and the scripted
    environment, plus the delivery-prefix invariant over its states.
    Shared by :func:`verify_delivery_order` and the exploration-engine
    benchmark emitter (:mod:`repro.ioa.engine.bench`).
    """
    t, r = "t", "r"
    factory = MessageFactory(label="v")
    batch = factory.fresh_many(messages)
    transmitter, receiver = protocol.build(t, r, ghost_uids=False)
    composition = Composition(
        [
            transmitter,
            receiver,
            NondetLossyFifoChannel(
                t, r, capacity=capacity, reorder_depth=reorder_depth
            ),
            NondetLossyFifoChannel(
                r, t, capacity=capacity, reorder_depth=reorder_depth
            ),
            ScriptedEnvironment(t, r, batch),
        ],
        name=f"mc({protocol.name})",
        memoize=memoize,
    )
    env_index = 4

    def invariant(state: State) -> bool:
        delivered = state[env_index].delivered
        return delivered == batch[: len(delivered)]

    # Declared read-set of the invariant (it only inspects the scripted
    # environment's slice): lets the accelerated backend cache verdicts
    # per distinct environment slice instead of per composed state.
    invariant.state_slots = (env_index,)  # type: ignore[attr-defined]

    return composition, invariant, batch


def verify_delivery_order(
    protocol: DataLinkProtocol,
    messages: int = 2,
    capacity: int = 2,
    reorder_depth: int = 1,
    max_states: int = 400_000,
    workers: Optional[int] = None,
) -> ModelCheckResult:
    """Exhaustively verify in-order, exactly-once delivery.

    Explores every reachable state of the closed system (protocol +
    bounded nondeterministic lossy channels + scripted environment) and
    checks that the environment's recorded delivery sequence is always
    a prefix of its submission sequence (safety only; liveness is the
    fair executors' business).

    ``reorder_depth > 1`` additionally lets the channels deliver out of
    order up to that displacement, mapping a protocol's exact
    reordering tolerance (cf. the paper's footnote 1): e.g. the
    alternating bit protocol is verified at depth 1 but yields a
    duplicate-delivery counterexample at depth 2.

    ``workers > 1`` shards each BFS layer across a process pool (see
    :func:`repro.ioa.explorer.explore`); the result is identical to a
    serial run.
    """
    composition, invariant, _ = build_closed_system(
        protocol,
        messages=messages,
        capacity=capacity,
        reorder_depth=reorder_depth,
    )
    result: ExplorationResult = explore(
        composition,
        invariant=invariant,
        max_states=max_states,
        max_depth=10_000_000,
        workers=workers,
    )
    counterexample = (
        None if result.violation is None else result.violation[1]
    )
    return ModelCheckResult(
        protocol_name=protocol.name,
        messages=messages,
        capacity=capacity,
        states_explored=len(result.states),
        exhaustive=not result.truncated,
        counterexample=counterexample,
    )
