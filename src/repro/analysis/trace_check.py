"""One-stop trace analysis: run every layer property over a behavior.

Produces a structured report listing, for each physical-layer and
data-link-layer property, whether it holds and (if not) the witness.
Used by tests, examples and the experiment harnesses to audit traces
produced by simulations and by the impossibility engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..ioa.actions import Action
from ..ioa.schedule_module import PropertyResult
from ..channels.properties import (
    pl1,
    pl2,
    pl3,
    pl4,
    pl5,
    pl6_finite_diagnostic,
    pl_well_formed,
)
from ..datalink.properties import (
    dl1,
    dl2,
    dl3,
    dl4,
    dl5,
    dl6,
    dl7,
    dl8,
    dl_well_formed,
    is_valid_sequence,
)


@dataclass
class TraceReport:
    """All property results for one trace."""

    results: Dict[str, PropertyResult] = field(default_factory=dict)

    def add(self, result: PropertyResult) -> None:
        self.results[result.name] = result

    @property
    def violations(self) -> Tuple[PropertyResult, ...]:
        return tuple(r for r in self.results.values() if not r.holds)

    @property
    def ok(self) -> bool:
        return not self.violations

    def holds(self, name: str) -> bool:
        return self.results[name].holds

    def describe(self) -> str:
        lines = []
        for name in sorted(self.results):
            result = self.results[name]
            status = "ok" if result.holds else f"VIOLATED: {result.witness}"
            lines.append(f"{name:16s} {status}")
        return "\n".join(lines)


def check_datalink_trace(
    behavior: Sequence[Action],
    t: str = "t",
    r: str = "r",
    quiescent: bool = True,
) -> TraceReport:
    """Evaluate well-formedness, (DL1)-(DL8) and validity on a behavior."""
    report = TraceReport()
    report.add(dl_well_formed(behavior, t, r))
    for check in (dl1, dl2, dl3, dl4, dl5, dl6, dl7):
        report.add(check(behavior, t, r))
    report.add(dl8(behavior, t, r, quiescent=quiescent))
    report.add(is_valid_sequence(behavior, t, r))
    return report


def check_physical_trace(
    schedule: Sequence[Action], src: str, dst: str
) -> TraceReport:
    """Evaluate well-formedness and (PL1)-(PL6) on a channel schedule."""
    report = TraceReport()
    report.add(pl_well_formed(schedule, src, dst))
    for check in (pl1, pl2, pl3, pl4, pl5):
        report.add(check(schedule, src, dst))
    report.add(pl6_finite_diagnostic(schedule, src, dst))
    return report
