"""Structured experiment reports (the tables behind EXPERIMENTS.md).

Each ``e*_table`` function runs one experiment and returns a
:class:`Table` of results; :func:`run_all` produces the full suite and
:func:`to_text` / :func:`to_markdown` render it.  The
``benchmarks/run_experiments.py`` script and the ``python -m repro
experiments`` command are thin wrappers around this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..alphabets import MessageFactory
from ..channels import lossy_fifo_channel, reordering_channel
from ..datalink import dl4, dl5, dl_module, probe_k_bound, wdl_module
from ..impossibility import (
    EngineError,
    refute_bounded_headers,
    refute_crash_tolerance,
)
from ..protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    eager_protocol,
    fragmenting_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
    stenning_protocol,
)
from ..sim import (
    DataLinkSystem,
    channel_stats,
    crash_storm,
    delivery_stats,
    fifo_system,
    run_scenario,
)
from .header_growth import measure_header_growth
from .model_check import verify_delivery_order

Row = Tuple[str, ...]


@dataclass
class Table:
    """One experiment's result table."""

    ident: str
    title: str
    columns: Tuple[str, ...]
    rows: List[Row] = field(default_factory=list)
    notes: Tuple[str, ...] = ()

    def add(self, *cells) -> None:
        self.rows.append(tuple(str(cell) for cell in cells))

    def to_text(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(
            column.ljust(widths[i])
            for i, column in enumerate(self.columns)
        )
        lines = [
            f"[{self.ident}] {self.title}",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.ljust(widths[i]) for i, cell in enumerate(row)
                )
            )
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.ident} — {self.title}",
            "",
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)


def e1_crash_table() -> Table:
    table = Table(
        "E1",
        "Theorem 7.5: crash impossibility over FIFO channels",
        ("protocol", "verdict", "violates", "levels", "replayed", "ms"),
    )
    victims = [
        alternating_bit_protocol(),
        sliding_window_protocol(2),
        sliding_window_protocol(4),
        selective_repeat_protocol(2),
        stenning_protocol(),
        baratz_segall_protocol(nonvolatile=False),
        eager_protocol(),
    ]
    for protocol in victims:
        started = time.perf_counter()
        certificate = refute_crash_tolerance(protocol)
        elapsed = (time.perf_counter() - started) * 1000
        assert certificate.validate()
        table.add(
            protocol.name,
            certificate.kind,
            ",".join(certificate.violated),
            certificate.stats["pump_levels"],
            certificate.stats["replayed_steps"],
            f"{elapsed:.1f}",
        )
    try:
        refute_crash_tolerance(baratz_segall_protocol(nonvolatile=True))
        table.add("baratz-segall(nv)", "UNEXPECTEDLY DEFEATED", "", "", "", "")
    except EngineError:
        table.add("baratz-segall(nv)", "rejected (not crashing)", "-", "-", "-", "-")
    return table


def e2_header_table() -> Table:
    table = Table(
        "E2",
        "Theorem 8.5: bounded headers over non-FIFO channels",
        ("protocol", "|H|", "k", "rounds", "bound", "verdict"),
    )
    victims = [
        alternating_bit_protocol(),
        sliding_window_protocol(2),
        selective_repeat_protocol(2),
        modulo_stenning_protocol(2),
        modulo_stenning_protocol(4),
        modulo_stenning_protocol(8),
        modulo_stenning_protocol(16),
    ]
    for protocol in victims:
        certificate = refute_bounded_headers(protocol)
        assert certificate.validate()
        header_count = len(protocol.header_space())
        k = certificate.stats["k"]
        table.add(
            protocol.name,
            header_count,
            k,
            certificate.stats["pump_rounds"],
            k * 2 * header_count,
            certificate.kind,
        )
    try:
        refute_bounded_headers(stenning_protocol())
        table.add("stenning", "", "", "", "", "UNEXPECTEDLY DEFEATED")
    except EngineError:
        table.add("stenning", "inf", "-", "-", "-", "rejected (unbounded)")
    return table


def e3_fifo_table(messages: int = 15) -> Table:
    table = Table(
        "E3",
        "positive control: sliding window over lossy FIFO",
        ("window", "loss", "delivered", "steps", "pkts", "overhead", "DL"),
    )
    module = dl_module("t", "r")
    for window in (1, 4):
        for loss in (0.0, 0.2, 0.4, 0.6):
            system = DataLinkSystem.build(
                sliding_window_protocol(window),
                lossy_fifo_channel("t", "r", seed=11, loss_rate=loss),
                lossy_fifo_channel("r", "t", seed=1008, loss_rate=loss),
            )
            factory = MessageFactory()
            batch = factory.fresh_many(messages)
            fragment = system.run_fair(
                system.initial_state(),
                inputs=[system.wake_t(), system.wake_r()]
                + [system.send(m) for m in batch],
                max_steps=500_000,
            )
            stats = delivery_stats(fragment)
            link = channel_stats(fragment, "t", "r")
            table.add(
                window,
                f"{loss:.1f}",
                f"{stats.delivered}/{messages}",
                len(fragment),
                link.packets_sent,
                f"{link.packets_sent / messages:.2f}",
                module.contains(system.behavior(fragment)),
            )
    return table


def e4_growth_table() -> Table:
    table = Table(
        "E4",
        "Stenning over reordering; header growth (Section 9)",
        ("messages", "stenning headers", "sliding-window(2) headers"),
    )
    stenning_series = measure_header_growth(
        stenning_protocol(), checkpoints=(1, 2, 4, 8, 16, 32)
    )
    window_series = measure_header_growth(
        sliding_window_protocol(2), checkpoints=(1, 2, 4, 8, 16, 32)
    )
    for a, b in zip(stenning_series.points, window_series.points):
        table.add(a.messages, a.total_distinct, b.total_distinct)
    # Reordering-correctness spot checks recorded as notes.
    notes = []
    module = wdl_module("t", "r")
    for loss, window in ((0.0, 2), (0.25, 6)):
        system = DataLinkSystem.build(
            stenning_protocol(),
            reordering_channel("t", "r", seed=5, loss_rate=loss, window=window),
            reordering_channel("r", "t", seed=55, loss_rate=loss, window=window),
        )
        factory = MessageFactory()
        batch = factory.fresh_many(12)
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[system.wake_t(), system.wake_r()]
            + [system.send(m) for m in batch],
            max_steps=500_000,
        )
        stats = delivery_stats(fragment)
        ok = module.contains(system.behavior(fragment))
        notes.append(
            f"stenning over reorder window {window}, loss {loss}: "
            f"{stats.delivered}/12 delivered, WDL {ok}"
        )
    notes.append(
        f"slopes: stenning {stenning_series.slope_estimate():.2f} "
        f"headers/message, sliding window "
        f"{window_series.slope_estimate():.2f}"
    )
    table.notes = tuple(notes)
    return table


def e5_nonvolatile_table() -> Table:
    table = Table(
        "E5",
        "non-volatile incarnations under crash storms",
        ("crashes", "seed", "sent", "delivered", "DL4", "DL5"),
    )
    violations = 0
    for crashes in (1, 3, 6, 10):
        for seed in range(3):
            system = fifo_system(baratz_segall_protocol(nonvolatile=True))
            script = crash_storm(system, crashes=crashes, seed=seed)
            result = run_scenario(system, script.actions, seed=seed)
            safe4 = dl4(result.behavior, "t", "r").holds
            safe5 = dl5(result.behavior, "t", "r").holds
            violations += (not safe4) + (not safe5)
            stats = delivery_stats(result.fragment)
            table.add(
                crashes,
                seed,
                len(script.messages),
                stats.delivered,
                safe4,
                safe5,
            )
    table.notes = (f"total safety violations: {violations}",)
    return table


def e6_kbound_table() -> Table:
    table = Table(
        "E6",
        "k-boundedness probe (Section 8.1)",
        ("protocol", "k", "per-round"),
    )
    for protocol in (
        alternating_bit_protocol(),
        sliding_window_protocol(2),
        selective_repeat_protocol(2),
        stenning_protocol(),
        fragmenting_protocol(chunk=1, max_fragments=3),
    ):
        probe = probe_k_bound(protocol)
        table.add(protocol.name, probe.k, probe.per_round)
    return table


def e9_model_check_table() -> Table:
    table = Table(
        "E9",
        "exhaustive bounded verification",
        ("protocol", "bounds", "verdict", "states", "exhaustive"),
    )
    cases = [
        (alternating_bit_protocol(), dict(messages=2, capacity=3)),
        (sliding_window_protocol(2), dict(messages=2, capacity=2)),
        (selective_repeat_protocol(2), dict(messages=2, capacity=2)),
        (stenning_protocol(), dict(messages=2, capacity=2)),
        (
            alternating_bit_protocol(),
            dict(messages=2, capacity=3, reorder_depth=2),
        ),
        (
            modulo_stenning_protocol(4),
            dict(messages=2, capacity=3, reorder_depth=2),
        ),
        (eager_protocol(), dict(messages=1, capacity=2)),
    ]
    for protocol, kwargs in cases:
        result = verify_delivery_order(protocol, **kwargs)
        bounds = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
        table.add(
            protocol.name,
            bounds,
            "verified" if result.ok else "counterexample",
            result.states_explored,
            result.exhaustive,
        )
    return table


ALL_TABLES: Tuple[Tuple[str, Callable[[], Table]], ...] = (
    ("E1", e1_crash_table),
    ("E2", e2_header_table),
    ("E3", e3_fifo_table),
    ("E4", e4_growth_table),
    ("E5", e5_nonvolatile_table),
    ("E6", e6_kbound_table),
    ("E9", e9_model_check_table),
)


def run_all(
    only: Optional[Sequence[str]] = None,
) -> List[Table]:
    """Run the experiment suite (optionally a subset by id)."""
    selected = [
        builder
        for ident, builder in ALL_TABLES
        if only is None or ident in only
    ]
    return [builder() for builder in selected]


def to_text(tables: Sequence[Table]) -> str:
    return "\n\n".join(table.to_text() for table in tables)


def to_markdown(tables: Sequence[Table]) -> str:
    parts = ["# Experiment report", ""]
    parts.extend(table.to_markdown() + "\n" for table in tables)
    return "\n".join(parts)
