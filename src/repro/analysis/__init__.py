"""Trace auditing and measurement utilities."""

from .ablation import (
    AblationCell,
    AblationGrid,
    reordering_tolerance_grid,
)
from .msc import render_fragment, render_msc
from .refinement_proofs import (
    ReliableLinkSpec,
    abp_mapping,
    verify_abp_refinement,
    verify_refinement,
)
from .report import Table, run_all, to_markdown, to_text
from .model_check import (
    ModelCheckResult,
    ScriptedEnvironment,
    build_closed_system,
    verify_delivery_order,
)
from .header_growth import (
    HeaderGrowthPoint,
    HeaderGrowthSeries,
    measure_header_growth,
)
from .trace_check import TraceReport, check_datalink_trace, check_physical_trace

__all__ = [
    "AblationCell",
    "ModelCheckResult",
    "ScriptedEnvironment",
    "ReliableLinkSpec",
    "Table",
    "render_fragment",
    "run_all",
    "to_markdown",
    "to_text",
    "render_msc",
    "abp_mapping",
    "build_closed_system",
    "verify_abp_refinement",
    "verify_delivery_order",
    "verify_refinement",
    "AblationGrid",
    "reordering_tolerance_grid",
    "HeaderGrowthPoint",
    "HeaderGrowthSeries",
    "TraceReport",
    "check_datalink_trace",
    "check_physical_trace",
    "measure_header_growth",
]
