"""Render executions as ASCII message sequence charts.

Turns a composed-system execution (or any action sequence) into a
two-station chart: environment interactions and crashes on the outer
edges, packets on the wire between the stations, with lost packets
(sent but never received) marked.  Used by the CLI (``simulate --msc``)
and handy when reading violation certificates.

Example output::

     t station                  wire                     r station
     wake
                                                         wake
     send_msg(m0)
     DATA(0)[m0] ------------------------------------->
                                                         (delivered)
                                                         receive_msg(m0)
                 <------------------------------------ ACK(0)
     (delivered)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..alphabets import Packet
from ..ioa.actions import Action
from ..ioa.execution import ExecutionFragment
from ..channels.actions import CRASH, FAIL, RECEIVE_PKT, SEND_PKT, WAKE
from ..datalink.actions import RECEIVE_MSG, SEND_MSG

_WIDTH = 72
_LEFT = 0
_WIRE = 24
_RIGHT = 50


def _packet_label(packet: Packet) -> str:
    body = ",".join(str(m) for m in packet.body)
    label = f"{packet.header}"
    if body:
        label += f"[{body}]"
    return label


def _line(column: int, text: str) -> str:
    return " " * column + text


def render_msc(
    trace: Sequence[Action],
    t: str = "t",
    r: str = "r",
) -> str:
    """Render an action sequence as an ASCII message sequence chart."""
    lost_uids = _lost_packet_uids(trace)
    lines: List[str] = [
        f"{t + ' station':<{_WIRE}}{'wire':<{_RIGHT - _WIRE}}{r} station",
        "-" * _WIDTH,
    ]
    for action in trace:
        rendered = _render_action(action, t, r, lost_uids)
        if rendered is not None:
            lines.append(rendered)
    return "\n".join(lines)


def render_fragment(
    fragment: ExecutionFragment, t: str = "t", r: str = "r"
) -> str:
    """Render a composed execution fragment (uses its full schedule)."""
    return render_msc(fragment.actions, t, r)


def _lost_packet_uids(trace: Sequence[Action]) -> Set[Tuple]:
    """(direction, uid) pairs of packets sent but never received."""
    sent: Set[Tuple] = set()
    received: Set[Tuple] = set()
    for action in trace:
        if action.name == SEND_PKT:
            sent.add((action.direction, action.payload.uid))
        elif action.name == RECEIVE_PKT:
            received.add((action.direction, action.payload.uid))
    return sent - received


def _render_action(
    action: Action,
    t: str,
    r: str,
    lost_uids: Set[Tuple],
) -> Optional[str]:
    direction = action.direction
    towards_r = direction == (t, r)
    if action.name == SEND_MSG:
        return _line(_LEFT, f"send_msg({action.payload})")
    if action.name == RECEIVE_MSG:
        return _line(_RIGHT, f"receive_msg({action.payload})")
    if action.name == WAKE or action.name == FAIL:
        column = _LEFT if towards_r else _RIGHT
        return _line(column, action.name)
    if action.name == CRASH:
        column = _LEFT if towards_r else _RIGHT
        return _line(column, "CRASH")
    if action.name == SEND_PKT:
        label = _packet_label(action.payload)
        lost = (direction, action.payload.uid) in lost_uids
        marker = " (lost)" if lost else ""
        if towards_r:
            arrow_space = _RIGHT - _LEFT - len(label) - 2
            return _line(
                _LEFT, f"{label} {'-' * max(arrow_space, 2)}>{marker}"
            )
        arrow_space = _RIGHT - _WIRE - len(label) - 2
        return _line(
            _WIRE, f"<{'-' * max(arrow_space, 2)} {label}{marker}"
        )
    if action.name == RECEIVE_PKT:
        column = _RIGHT if towards_r else _LEFT
        return _line(column, f"(delivered {_packet_label(action.payload)})")
    return _line(_WIRE, str(action))
