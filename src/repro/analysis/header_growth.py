"""Header-growth measurement (paper, Section 9 discussion).

The paper's final discussion contrasts protocols by the number of
distinct headers used to transmit the first ``n`` messages: Stenning's
protocol uses a *linear* number (a new header per message), while
sliding-window protocols use a constant number -- and Section 8 proves
that over non-FIFO channels a bounded (indeed, the final-version remark
suggests any sublinear) number cannot suffice.

This module measures the distinct-header count as a function of ``n``
for any protocol over any channel pair, producing the series behind
experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..alphabets import MessageFactory
from ..datalink.protocol import DataLinkProtocol
from ..sim.metrics import channel_stats
from ..sim.network import fifo_system, permissive_system


@dataclass
class HeaderGrowthPoint:
    """Distinct header classes used after delivering ``n`` messages."""

    messages: int
    distinct_headers_tr: int
    distinct_headers_rt: int
    packets_sent: int

    @property
    def total_distinct(self) -> int:
        return self.distinct_headers_tr + self.distinct_headers_rt


@dataclass
class HeaderGrowthSeries:
    """The growth curve for one protocol."""

    protocol_name: str
    points: Tuple[HeaderGrowthPoint, ...]

    def slope_estimate(self) -> float:
        """Headers-per-message over the measured range.

        Approximately 1.0 (counting data headers alone) for Stenning's
        protocol and approximately 0 for bounded-header protocols.
        """
        if len(self.points) < 2:
            return 0.0
        first, last = self.points[0], self.points[-1]
        span = last.messages - first.messages
        if span <= 0:
            return 0.0
        return (last.total_distinct - first.total_distinct) / span

    def is_bounded(self, bound: Optional[int] = None) -> bool:
        """Heuristic boundedness: the census stopped growing."""
        if bound is not None:
            return all(p.total_distinct <= bound for p in self.points)
        if len(self.points) < 2:
            return True
        return (
            self.points[-1].total_distinct
            == self.points[-2].total_distinct
        )


def measure_header_growth(
    protocol: DataLinkProtocol,
    checkpoints: Sequence[int] = (1, 2, 4, 8, 16, 32),
    fifo: bool = True,
    max_steps: int = 500_000,
) -> HeaderGrowthSeries:
    """Deliver messages one at a time, sampling the header census.

    Uses clean permissive channels (FIFO or not) so every protocol in
    the repository terminates each delivery.
    """
    system = fifo_system(protocol) if fifo else permissive_system(protocol)
    factory = MessageFactory(label="g")
    fragment = system.run_inputs(
        system.initial_state(), [system.wake_t(), system.wake_r()]
    )
    points: List[HeaderGrowthPoint] = []
    delivered = 0
    for target in sorted(checkpoints):
        while delivered < target:
            message = factory.fresh()
            extension = system.run_fair(
                fragment.final_state,
                inputs=[system.send(message)],
                max_steps=max_steps,
            )
            fragment = fragment.extend(extension)
            delivered += 1
        stats_tr = channel_stats(fragment, system.t, system.r)
        stats_rt = channel_stats(fragment, system.r, system.t)
        points.append(
            HeaderGrowthPoint(
                messages=delivered,
                distinct_headers_tr=stats_tr.distinct_headers,
                distinct_headers_rt=stats_rt.distinct_headers,
                packets_sent=stats_tr.packets_sent + stats_rt.packets_sent,
            )
        )
    return HeaderGrowthSeries(protocol.name, tuple(points))
