#!/usr/bin/env python3
"""Theorem 7.5 across the protocol zoo (experiment E1).

Runs the crash-impossibility engine against every crashing protocol in
the repository -- the alternating-bit protocol, sliding windows of
several sizes, Stenning's protocol, and the volatile variant of the
Baratz-Segall initialization protocol -- and shows that:

* every one of them yields a machine-checked counterexample, and
* the non-volatile Baratz-Segall protocol falls *outside* the theorem's
  hypotheses (it is not "crashing") and is rejected, not defeated.

Run:  python examples/crash_impossibility.py
"""

from repro.impossibility import EngineError, refute_crash_tolerance
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    eager_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

VICTIMS = [
    alternating_bit_protocol(),
    sliding_window_protocol(1),
    sliding_window_protocol(2),
    sliding_window_protocol(4),
    sliding_window_protocol(8),
    stenning_protocol(),
    baratz_segall_protocol(nonvolatile=False),
    eager_protocol(),
]


def main() -> None:
    print("Theorem 7.5: no crashing, message-independent data link")
    print("protocol is weakly correct over FIFO physical channels.\n")
    header = (
        f"{'protocol':30s} {'verdict':10s} {'violates':8s} "
        f"{'levels':>6s} {'replayed':>8s} {'valid':>5s}"
    )
    print(header)
    print("-" * len(header))
    for protocol in VICTIMS:
        certificate = refute_crash_tolerance(protocol)
        print(
            f"{protocol.name:30s} {certificate.kind:10s} "
            f"{','.join(certificate.violated):8s} "
            f"{certificate.stats['pump_levels']:6d} "
            f"{certificate.stats['replayed_steps']:8d} "
            f"{str(certificate.validate()):>5s}"
        )

    print("\nboundary check: the non-volatile protocol escapes --")
    try:
        refute_crash_tolerance(baratz_segall_protocol(nonvolatile=True))
    except EngineError as exc:
        print(f"  baratz-segall(nv): rejected ({exc})")

    print("\none counterexample in full (alternating-bit):\n")
    print(refute_crash_tolerance(alternating_bit_protocol()).describe())


if __name__ == "__main__":
    main()
