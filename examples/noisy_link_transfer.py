#!/usr/bin/env python3
"""A realistic workload: bulk transfer over a noisy link.

Transfers a batch of records across progressively worse FIFO links with
a Go-Back-N sliding window, comparing window sizes.  Shows the numbers
an operator would care about -- delivery, latency, retransmission
overhead -- and verifies every run against the DL specification, so the
simulation doubles as a conformance check.

Run:  python examples/noisy_link_transfer.py
"""

from repro.alphabets import MessageFactory
from repro.channels import lossy_fifo_channel
from repro.datalink import dl_module
from repro.protocols import sliding_window_protocol
from repro.sim import DataLinkSystem, channel_stats, delivery_stats

RECORDS = 20
LOSS_RATES = (0.0, 0.2, 0.4, 0.6)
WINDOWS = (1, 4)


def transfer(window: int, loss_rate: float, seed: int = 7):
    protocol = sliding_window_protocol(window)
    system = DataLinkSystem.build(
        protocol,
        lossy_fifo_channel("t", "r", seed=seed, loss_rate=loss_rate),
        lossy_fifo_channel("r", "t", seed=seed + 1, loss_rate=loss_rate),
    )
    factory = MessageFactory()
    messages = factory.fresh_many(RECORDS)
    fragment = system.run_fair(
        system.initial_state(),
        inputs=[system.wake_t(), system.wake_r()]
        + [system.send(m) for m in messages],
        max_steps=500_000,
    )
    ok = dl_module("t", "r").contains(system.behavior(fragment))
    return fragment, ok


def main() -> None:
    print(f"bulk transfer of {RECORDS} records over a lossy FIFO link\n")
    header = (
        f"{'window':>6s} {'loss':>5s} {'delivered':>9s} "
        f"{'steps':>7s} {'mean lat':>8s} {'pkts sent':>9s} "
        f"{'overhead':>8s} {'DL ok':>5s}"
    )
    print(header)
    print("-" * len(header))
    for window in WINDOWS:
        for loss_rate in LOSS_RATES:
            fragment, ok = transfer(window, loss_rate)
            stats = delivery_stats(fragment)
            link = channel_stats(fragment, "t", "r")
            overhead = link.packets_sent / max(stats.delivered, 1)
            print(
                f"{window:6d} {loss_rate:5.1f} "
                f"{stats.delivered:6d}/{RECORDS:<2d} "
                f"{len(fragment):7d} {stats.mean_latency:8.1f} "
                f"{link.packets_sent:9d} {overhead:8.2f} "
                f"{str(ok):>5s}"
            )
    print(
        "\nexpected shape: every run delivers all records and satisfies"
        "\nDL; packet overhead and latency grow with the loss rate."
        "\n(This simulator counts events with zero propagation delay, so"
        "\nwindow pipelining -- a latency optimization -- shows up only"
        "\nas seed-level noise between window sizes.)"
    )


if __name__ == "__main__":
    main()
