#!/usr/bin/env python3
"""Exhaustive bounded verification (experiment E9).

Three adversaries live in this repository: seeded random channels
(sampling), the paper's constructive pumping (which builds one precise
bad execution), and — shown here — an exhaustive explorer that
enumerates *every* loss pattern and interleaving over bounded
nondeterministic channels.

The demo:

1. proves (at the stated bounds) that the alternating-bit protocol
   delivers in order, exactly once, over every lossy FIFO channel
   behavior;
2. flips one knob — reordering displacement 2 — and prints the minimal
   counterexample as a message sequence chart;
3. shows that modulo-Stenning(4) tolerates that same displacement
   (the paper's footnote 1: bounded packet displacement restores
   bounded headers), while Theorem 8.5's engine still defeats it under
   *unbounded* reordering.

Run:  python examples/exhaustive_verification.py
"""

from repro.analysis import render_msc, verify_delivery_order
from repro.impossibility import refute_bounded_headers
from repro.protocols import (
    alternating_bit_protocol,
    eager_protocol,
    modulo_stenning_protocol,
)


def report(label, result):
    verdict = "VERIFIED" if result.ok else "COUNTEREXAMPLE"
    scope = "exhaustive" if result.exhaustive else "truncated"
    print(
        f"{label:44s} {verdict:14s} {result.states_explored:7d} states "
        f"({scope})"
    )
    return result


def main() -> None:
    print("exhaustive bounded verification: 2 messages, capacity-3")
    print("nondeterministic lossy channels\n")

    report(
        "alternating-bit, FIFO (depth 1)",
        verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=3,
            reorder_depth=1,
        ),
    )
    broken = report(
        "alternating-bit, reorder depth 2",
        verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=3,
            reorder_depth=2,
        ),
    )
    report(
        "modulo-stenning(4), reorder depth 2",
        verify_delivery_order(
            modulo_stenning_protocol(4),
            messages=2,
            capacity=3,
            reorder_depth=2,
        ),
    )
    report(
        "naive-eager, FIFO (no dedup)",
        verify_delivery_order(eager_protocol(), messages=1, capacity=2),
    )

    print("\nthe minimal ABP counterexample under displacement-2 reordering:")
    print()
    print(render_msc(broken.counterexample))

    print(
        "\n...but no bounded modulus survives *unbounded* reordering "
        "(Theorem 8.5):"
    )
    certificate = refute_bounded_headers(modulo_stenning_protocol(4))
    print(
        f"  modulo-stenning(4): {certificate.kind} after "
        f"{certificate.stats['pump_rounds']} pumping rounds "
        f"(validated: {certificate.validate()})"
    )


if __name__ == "__main__":
    main()
