#!/usr/bin/env python3
"""Crash recovery with and without non-volatile memory (experiment E5).

The paper proves (Theorem 7.5) that *zero* non-volatile memory makes
crash-tolerant data links impossible; Baratz & Segall showed a little
non-volatile state suffices.  This example walks the boundary:

1. subjects the non-volatile protocol to crash storms and verifies the
   safety properties (DL4)/(DL5) hold in every run, and that messages
   submitted after the storms settle are delivered;
2. shows the volatile variant of the *same* protocol being defeated by
   the crash engine.

Run:  python examples/crash_recovery_session.py
"""

from repro.alphabets import MessageFactory
from repro.datalink import dl4, dl5
from repro.impossibility import EngineError, refute_crash_tolerance
from repro.protocols import baratz_segall_protocol
from repro.sim import crash_storm, delivery_stats, fifo_system, run_scenario


def storm_run(crashes: int, seed: int):
    system = fifo_system(baratz_segall_protocol(nonvolatile=True))
    script = crash_storm(system, crashes=crashes, seed=seed)
    result = run_scenario(system, script.actions, seed=seed)
    return script, result


def main() -> None:
    print("part 1: non-volatile incarnations under crash storms\n")
    header = (
        f"{'crashes':>7s} {'seed':>4s} {'sent':>4s} {'delivered':>9s} "
        f"{'DL4':>4s} {'DL5':>4s} {'quiescent':>9s}"
    )
    print(header)
    print("-" * len(header))
    for crashes in (1, 3, 6, 10):
        for seed in range(3):
            script, result = storm_run(crashes, seed)
            stats = delivery_stats(result.fragment)
            safe4 = dl4(result.behavior, "t", "r").holds
            safe5 = dl5(result.behavior, "t", "r").holds
            print(
                f"{crashes:7d} {seed:4d} {len(script.messages):4d} "
                f"{stats.delivered:9d} {str(safe4):>4s} "
                f"{str(safe5):>4s} {str(result.quiescent):>9s}"
            )
    print(
        "\nmessages submitted around a crash may be lost (they were in"
        "\ndoubt and discarded at session reset) but no message is ever"
        "\nduplicated or invented: (DL4)/(DL5) hold in every run."
    )

    print("\npart 2: the same protocol with volatile incarnations\n")
    certificate = refute_crash_tolerance(
        baratz_segall_protocol(nonvolatile=False)
    )
    print(certificate.describe())

    print("\npart 3: the non-volatile variant escapes the theorem --")
    try:
        refute_crash_tolerance(baratz_segall_protocol(nonvolatile=True))
    except EngineError as exc:
        print(f"  rejected: {exc}")


if __name__ == "__main__":
    main()
