#!/usr/bin/env python3
"""Layering: a two-hop network path built from two data links.

The paper's introduction motivates the data link layer as the reliable
building block the higher layers stand on ("provided for the use of the
next higher layer").  This example *is* that next layer: a relay station
``m`` forwards messages between two independent data links

    t ==[ABP over lossy FIFO]== m ==[sliding window over lossy FIFO]== r

composed from nine I/O automata (two protocol pairs, four channels, one
relay).  End-to-end in-order exactly-once delivery follows from each
hop's DL guarantee plus the relay's FIFO queue -- and the run is checked
against the DL specification end to end.

Run:  python examples/two_hop_relay.py
"""

from typing import Iterable, Tuple

from repro.alphabets import Message, MessageFactory
from repro.channels import lossy_fifo_channel, packet_families
from repro.datalink import dl_module, receive_msg, send_msg
from repro.datalink.actions import RECEIVE_MSG, SEND_MSG
from repro.ioa import (
    Action,
    ActionSignature,
    Automaton,
    Composition,
    ExecutionFragment,
    action_family,
    fair_extension,
    hide,
)
from repro.protocols import alternating_bit_protocol, sliding_window_protocol


class Relay(Automaton):
    """The higher layer at the intermediate station.

    Consumes ``receive_msg^{t,m}`` deliveries from the first link and
    re-submits each as ``send_msg^{m,r}`` on the second.
    """

    def __init__(self, t: str, m: str, r: str):
        self.t, self.m, self.r = t, m, r
        self._signature = ActionSignature.make(
            inputs=[action_family(RECEIVE_MSG, t, m)],
            outputs=[action_family(SEND_MSG, m, r)],
        )
        self.name = f"relay[{m}]"

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> Tuple[Message, ...]:
        return ()

    def transitions(self, state, action):
        if action.key == (RECEIVE_MSG, (self.t, self.m)):
            return (state + (action.payload,),)
        if action.key == (SEND_MSG, (self.m, self.r)):
            if state and state[0] == action.payload:
                return (state[1:],)
            return ()
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state:
            yield send_msg(self.m, self.r, state[0])


def build_path():
    t, m, r = "t", "m", "r"
    hop1_tx, hop1_rx = alternating_bit_protocol().build(t, m)
    hop2_tx, hop2_rx = sliding_window_protocol(3).build(m, r)
    components = [
        hop1_tx,
        hop1_rx,
        lossy_fifo_channel(t, m, seed=3, loss_rate=0.35),
        lossy_fifo_channel(m, t, seed=4, loss_rate=0.35),
        Relay(t, m, r),
        hop2_tx,
        hop2_rx,
        lossy_fifo_channel(m, r, seed=5, loss_rate=0.35),
        lossy_fifo_channel(r, m, seed=6, loss_rate=0.35),
    ]
    composition = Composition(components, name="two-hop-path")
    hidden = hide(
        composition,
        packet_families(t, m)
        + packet_families(m, t)
        + packet_families(m, r)
        + packet_families(r, m)
        # The first hop's deliveries and the relay's submissions are
        # internal to the path too -- the end-to-end service is
        # send_msg^{t,m} in, receive_msg^{m,r} out.
        + (action_family(RECEIVE_MSG, t, m), action_family(SEND_MSG, m, r)),
    )
    return hidden


def main() -> None:
    path = build_path()
    factory = MessageFactory()
    messages = factory.fresh_many(8)
    from repro.channels import wake

    inputs = [
        wake("t", "m"),
        wake("m", "t"),
        wake("m", "r"),
        wake("r", "m"),
    ] + [send_msg("t", "m", message) for message in messages]
    fragment = fair_extension(
        path,
        ExecutionFragment.initial(path.initial_state()),
        inputs=inputs,
        max_steps=500_000,
    )
    delivered = [
        a.payload
        for a in fragment.actions
        if a.key == (RECEIVE_MSG, ("m", "r"))
    ]
    print(
        f"nine automata, two lossy hops (35% loss each): delivered "
        f"{len(delivered)}/{len(messages)} messages in {len(fragment)} "
        "steps"
    )
    print(f"in order: {delivered == list(messages)}")

    # End-to-end audit: relabel the path's interface as one data link
    # (sends at (t,m), deliveries at (m,r)) and check the DL properties
    # that make sense end to end (DL3/DL4/DL5/DL6).
    end_to_end = [
        a
        for a in fragment.behavior(path.signature)
        if a.name in (SEND_MSG, RECEIVE_MSG)
    ]
    sent = [a.payload for a in end_to_end if a.name == SEND_MSG]
    received = [a.payload for a in end_to_end if a.name == RECEIVE_MSG]
    print(
        "end-to-end: no duplicates "
        f"{len(set(received)) == len(received)}, no inventions "
        f"{set(received) <= set(sent)}, FIFO "
        f"{received == [m for m in sent if m in set(received)]}"
    )


if __name__ == "__main__":
    main()
