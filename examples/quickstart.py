#!/usr/bin/env python3
"""Quickstart: the library in five minutes.

1. Build a classic data link protocol (the alternating-bit protocol).
2. Run it over a lossy FIFO physical channel and watch it deliver.
3. Check the resulting behavior against the paper's DL specification.
4. Run the paper's Theorem 7.5 construction against it and print the
   machine-checked counterexample showing it cannot survive host
   crashes.

Run:  python examples/quickstart.py
"""

from repro.alphabets import MessageFactory
from repro.channels import lossy_fifo_channel
from repro.datalink import dl_module
from repro.impossibility import refute_crash_tolerance
from repro.protocols import alternating_bit_protocol
from repro.sim import DataLinkSystem, delivery_stats


def main() -> None:
    # -- 1. A protocol is a pair of I/O automata -----------------------
    protocol = alternating_bit_protocol()
    print(f"protocol: {protocol.name} -- {protocol.description}")

    # -- 2. Compose it with two lossy FIFO physical channels -----------
    system = DataLinkSystem.build(
        protocol,
        lossy_fifo_channel("t", "r", seed=1, loss_rate=0.4),
        lossy_fifo_channel("r", "t", seed=2, loss_rate=0.4),
    )
    factory = MessageFactory()
    messages = factory.fresh_many(5)
    fragment = system.run_fair(
        system.initial_state(),
        inputs=[system.wake_t(), system.wake_r()]
        + [system.send(m) for m in messages],
    )
    stats = delivery_stats(fragment)
    print(
        f"\nover a 40%-lossy FIFO link: delivered "
        f"{stats.delivered}/{stats.sent} messages in {len(fragment)} "
        f"steps (mean latency {stats.mean_latency:.1f} steps, "
        f"0 duplicates: {stats.duplicates == 0})"
    )

    # -- 3. The behavior satisfies the DL specification ----------------
    behavior = system.behavior(fragment)
    verdict = dl_module("t", "r").check(behavior)
    print(f"behavior in scheds(DL^t,r): {verdict.in_module}")
    print("external events:")
    for action in behavior:
        print(f"  {action}")

    # -- 4. ... but no crashing protocol survives host crashes ---------
    print("\nTheorem 7.5: running the crash-impossibility construction")
    certificate = refute_crash_tolerance(protocol)
    print(certificate.describe())
    print(f"\ncertificate independently validated: {certificate.validate()}")


if __name__ == "__main__":
    main()
