#!/usr/bin/env python3
"""Theorem 8.5 and the price of reordering tolerance (experiments E2/E4).

Part 1 runs the bounded-header engine against the modulo-Stenning
family and the sliding windows: every bounded-header protocol yields a
duplicate-delivery counterexample over the permissive non-FIFO channel,
with pumping effort growing with the header count -- the engine's
T-chain is bounded by k * |headers(A)| exactly as in Lemma 8.4.

Part 2 measures the other side of the trade-off (the Section 9
discussion): Stenning's protocol *is* weakly correct over reordering
channels, but the number of distinct headers it uses grows linearly
with the number of messages, while the (incorrect-over-reordering)
bounded protocols stay at O(1).

Run:  python examples/bounded_headers.py
"""

from repro.analysis import measure_header_growth
from repro.impossibility import EngineError, refute_bounded_headers
from repro.protocols import (
    alternating_bit_protocol,
    modulo_stenning_protocol,
    sliding_window_protocol,
    stenning_protocol,
)


def main() -> None:
    print("Theorem 8.5: bounded headers cannot survive reordering.\n")
    victims = [
        alternating_bit_protocol(),
        sliding_window_protocol(2),
        sliding_window_protocol(4),
        modulo_stenning_protocol(2),
        modulo_stenning_protocol(4),
        modulo_stenning_protocol(8),
        modulo_stenning_protocol(16),
    ]
    header = (
        f"{'protocol':26s} {'|headers|':>9s} {'k':>3s} "
        f"{'pump rounds':>11s} {'bound k*2|H|':>12s} {'verdict':>18s}"
    )
    print(header)
    print("-" * len(header))
    for protocol in victims:
        certificate = refute_bounded_headers(protocol)
        header_count = len(protocol.header_space())
        k = certificate.stats["k"]
        print(
            f"{protocol.name:26s} {header_count:9d} {k:3d} "
            f"{certificate.stats['pump_rounds']:11d} "
            f"{k * 2 * header_count:12d} "
            f"{certificate.kind:>18s}"
        )

    print("\nboundary check: unbounded headers escape --")
    try:
        refute_bounded_headers(stenning_protocol())
    except EngineError as exc:
        print(f"  stenning: rejected ({exc})\n")

    print("the price Stenning pays (Section 9): header growth")
    print(f"{'messages':>8s} {'stenning':>9s} {'sliding-window(2)':>18s}")
    stenning_series = measure_header_growth(
        stenning_protocol(), checkpoints=(1, 2, 4, 8, 16, 32)
    )
    window_series = measure_header_growth(
        sliding_window_protocol(2), checkpoints=(1, 2, 4, 8, 16, 32)
    )
    for s_point, w_point in zip(
        stenning_series.points, window_series.points
    ):
        print(
            f"{s_point.messages:8d} {s_point.total_distinct:9d} "
            f"{w_point.total_distinct:18d}"
        )
    print(
        f"\nslopes (headers/message): stenning "
        f"{stenning_series.slope_estimate():.2f}, sliding window "
        f"{window_series.slope_estimate():.2f}"
    )


if __name__ == "__main__":
    main()
