"""E9 -- exhaustive bounded verification of the protocol zoo.

Complements the other experiments' sampled and constructed adversaries
with full state-space enumeration at small bounds: every loss pattern
and every interleaving over bounded-capacity nondeterministic lossy
FIFO channels.  Expected shape: the correct protocols verify
exhaustively; the strawmen yield minimal counterexamples in well under
a hundred states.
"""

from __future__ import annotations

import pytest

from repro.analysis import verify_delivery_order
from repro.protocols import (
    alternating_bit_protocol,
    direct_protocol,
    eager_protocol,
    fragmenting_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

VERIFIED = {
    "abp": (alternating_bit_protocol, 2, 2),
    "sliding-window-2": (lambda: sliding_window_protocol(2), 2, 2),
    "stenning": (stenning_protocol, 2, 2),
    "fragmenting": (
        lambda: fragmenting_protocol(chunk=1, max_fragments=2),
        2,
        2,
    ),
}


@pytest.mark.parametrize("name", sorted(VERIFIED))
def test_exhaustive_verification(benchmark, name):
    factory, messages, capacity = VERIFIED[name]

    result = benchmark(
        lambda: verify_delivery_order(
            factory(), messages=messages, capacity=capacity
        )
    )
    assert result.ok and result.exhaustive
    benchmark.extra_info["states"] = result.states_explored


RAISED_BOUNDS = {
    # Bounds the seed explorer was too slow to reach comfortably; the
    # exploration engine (see bench/BENCH_explore.json) makes them
    # routine.  sliding-window at 3 messages / capacity 3 is a ~105k
    # state proof.
    "abp-3msg-cap3": (alternating_bit_protocol, 3, 3),
    "sliding-window-2-3msg-cap3": (lambda: sliding_window_protocol(2), 3, 3),
}


@pytest.mark.parametrize("name", sorted(RAISED_BOUNDS))
def test_exhaustive_verification_raised_bounds(benchmark, name):
    factory, messages, capacity = RAISED_BOUNDS[name]

    result = benchmark.pedantic(
        lambda: verify_delivery_order(
            factory(),
            messages=messages,
            capacity=capacity,
            max_states=2_000_000,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.ok and result.exhaustive
    benchmark.extra_info["states"] = result.states_explored


@pytest.mark.parametrize(
    "name,factory",
    [("eager", eager_protocol), ("direct", direct_protocol)],
)
def test_counterexample_search(benchmark, name, factory):
    result = benchmark(
        lambda: verify_delivery_order(factory(), messages=2, capacity=2)
    )
    assert not result.ok
    benchmark.extra_info["states"] = result.states_explored
    benchmark.extra_info["cex_length"] = len(result.counterexample)


def test_abp_refinement_proof(benchmark):
    """Structural ``solves``: ABP refines the reliable-link spec."""
    from repro.analysis import verify_abp_refinement

    result = benchmark(
        lambda: verify_abp_refinement(messages=2, capacity=2)
    )
    assert result.holds and result.exhaustive
    benchmark.extra_info["states"] = result.states_checked


def test_reordering_boundary(benchmark):
    """Footnote-1 complement, exhaustively: modulus vs. displacement."""
    from repro.protocols import modulo_stenning_protocol

    def boundary():
        abp_fifo = verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=3,
            reorder_depth=1,
        )
        abp_reorder = verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=3,
            reorder_depth=2,
        )
        mod4_reorder = verify_delivery_order(
            modulo_stenning_protocol(4),
            messages=2,
            capacity=3,
            reorder_depth=2,
        )
        return abp_fifo, abp_reorder, mod4_reorder

    abp_fifo, abp_reorder, mod4_reorder = benchmark(boundary)
    assert abp_fifo.ok and abp_fifo.exhaustive
    assert not abp_reorder.ok  # ABP breaks at displacement 2
    assert mod4_reorder.ok and mod4_reorder.exhaustive  # N=4 tolerates it
    benchmark.extra_info["abp_cex_len"] = len(abp_reorder.counterexample)
