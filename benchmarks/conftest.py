"""Benchmark-suite configuration."""

from __future__ import annotations



def pytest_collection_modifyitems(items):
    # Benchmarks double as the experiment harness; keep ordering stable
    # so the printed tables in EXPERIMENTS.md are reproducible.
    items.sort(key=lambda item: item.nodeid)
