"""E3 -- positive control: sliding window over FIFO channels.

The folklore counterpart of the impossibility results: over FIFO
physical channels (with loss but no reordering, no crashes), the
sliding-window protocols satisfy the *full* DL specification.  The
benchmark sweeps loss rates and window sizes, timing the transfer and
asserting zero violations across all seeds; the shape to reproduce is
monotone cost in the loss rate, with larger windows cheaper at high
loss.
"""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.channels import lossy_fifo_channel
from repro.datalink import dl_module
from repro.protocols import alternating_bit_protocol, sliding_window_protocol
from repro.sim import DataLinkSystem, channel_stats, delivery_stats

MESSAGES = 15


def run_transfer(protocol, loss_rate: float, seed: int):
    system = DataLinkSystem.build(
        protocol,
        lossy_fifo_channel("t", "r", seed=seed, loss_rate=loss_rate),
        lossy_fifo_channel("r", "t", seed=seed + 997, loss_rate=loss_rate),
    )
    factory = MessageFactory()
    messages = factory.fresh_many(MESSAGES)
    fragment = system.run_fair(
        system.initial_state(),
        inputs=[system.wake_t(), system.wake_r()]
        + [system.send(m) for m in messages],
        max_steps=500_000,
    )
    return system, fragment


@pytest.mark.parametrize("loss", [0.0, 0.2, 0.4, 0.6])
@pytest.mark.parametrize("window", [1, 4])
def test_sliding_window_over_lossy_fifo(benchmark, window, loss):
    protocol = sliding_window_protocol(window)

    def transfer():
        return run_transfer(protocol, loss, seed=11)

    system, fragment = benchmark(transfer)
    stats = delivery_stats(fragment)
    assert stats.delivered == MESSAGES
    assert stats.duplicates == 0
    assert dl_module("t", "r").contains(system.behavior(fragment))
    link = channel_stats(fragment, "t", "r")
    benchmark.extra_info["steps"] = len(fragment)
    benchmark.extra_info["packets_sent"] = link.packets_sent
    benchmark.extra_info["mean_latency"] = round(stats.mean_latency, 1)


def test_zero_violations_across_seeds(benchmark):
    """The headline number: 0 DL violations over the whole sweep."""

    def sweep():
        violations = 0
        module = dl_module("t", "r")
        for seed in range(8):
            for loss in (0.2, 0.5):
                system, fragment = run_transfer(
                    alternating_bit_protocol(), loss, seed
                )
                if not module.contains(system.behavior(fragment)):
                    violations += 1
        return violations

    violations = benchmark(sweep)
    assert violations == 0


def test_overhead_grows_with_loss(benchmark):
    """Crossover-free shape: retransmission overhead (packets sent per
    message delivered) grows monotonically with the loss rate.

    Note on windows: this simulator counts *events*, not wall-clock
    time, and its channels deliver as soon as scheduled, so window
    pipelining -- a latency optimization -- confers no systematic
    event-count advantage here; the loss/overhead relationship is the
    robust observable.  (Recorded in EXPERIMENTS.md.)
    """

    def sweep():
        overheads = []
        for loss in (0.0, 0.3, 0.6):
            total_sent = 0
            for seed in range(4):
                _, fragment = run_transfer(
                    sliding_window_protocol(4), loss, seed
                )
                from repro.sim import channel_stats

                total_sent += channel_stats(
                    fragment, "t", "r"
                ).packets_sent
            overheads.append(total_sent / (4 * MESSAGES))
        return overheads

    overheads = benchmark(sweep)
    assert overheads[0] < overheads[1] < overheads[2]
    assert overheads[0] == pytest.approx(1.0, abs=0.2)
