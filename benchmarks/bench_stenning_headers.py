"""E4 -- positive control: Stenning over non-FIFO channels + header growth.

Two claims from the paper's Sections 1 and 9:

* Stenning's protocol (distinct sequence numbers) is weakly correct
  even when the physical channels reorder arbitrarily;
* the price is a header alphabet that grows linearly with the number
  of messages, versus O(1) for the sliding windows (which are unusable
  over such channels -- see E2).
"""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.analysis import measure_header_growth
from repro.channels import reordering_channel
from repro.datalink import wdl_module
from repro.protocols import sliding_window_protocol, stenning_protocol
from repro.sim import DataLinkSystem, delivery_stats

MESSAGES = 12


@pytest.mark.parametrize("window", [2, 6])
@pytest.mark.parametrize("loss", [0.0, 0.25])
def test_stenning_over_reordering(benchmark, window, loss):
    def transfer():
        system = DataLinkSystem.build(
            stenning_protocol(),
            reordering_channel(
                "t", "r", seed=5, loss_rate=loss, window=window
            ),
            reordering_channel(
                "r", "t", seed=55, loss_rate=loss, window=window
            ),
        )
        factory = MessageFactory()
        messages = factory.fresh_many(MESSAGES)
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[system.wake_t(), system.wake_r()]
            + [system.send(m) for m in messages],
            max_steps=500_000,
        )
        return system, fragment

    system, fragment = benchmark(transfer)
    stats = delivery_stats(fragment)
    assert stats.delivered == MESSAGES and stats.duplicates == 0
    assert wdl_module("t", "r").contains(system.behavior(fragment))
    benchmark.extra_info["steps"] = len(fragment)


@pytest.mark.parametrize(
    "name,factory,expected_slope_range",
    [
        ("stenning", stenning_protocol, (1.5, 2.5)),
        ("sliding-window-2", lambda: sliding_window_protocol(2), (0.0, 0.5)),
    ],
)
def test_header_growth(benchmark, name, factory, expected_slope_range):
    def measure():
        return measure_header_growth(
            factory(), checkpoints=(1, 2, 4, 8, 16, 32)
        )

    series = benchmark(measure)
    low, high = expected_slope_range
    slope = series.slope_estimate()
    assert low <= slope <= high, (name, slope)
    benchmark.extra_info["slope"] = round(slope, 2)
    benchmark.extra_info["headers_at_32"] = series.points[-1].total_distinct


def test_growth_contrast(benchmark):
    """Crossover: linear vs bounded header usage."""

    def contrast():
        stenning_series = measure_header_growth(
            stenning_protocol(), checkpoints=(4, 16)
        )
        window_series = measure_header_growth(
            sliding_window_protocol(2), checkpoints=(4, 16)
        )
        return stenning_series, window_series

    stenning_series, window_series = benchmark(contrast)
    assert not stenning_series.is_bounded()
    assert window_series.is_bounded()
    assert (
        stenning_series.points[-1].total_distinct
        > 4 * window_series.points[-1].total_distinct
    )
