"""E6 -- the permissive channels and the Section 6 lemma operations.

Micro-benchmarks of the delivery-set machinery the impossibility
engines lean on: channel stepping, the ``del`` surgery, clean-state and
waiting-sequence rewrites.  Each benchmark also asserts the lemma's
postcondition, so the suite doubles as a conformance check for
Lemmas 6.3-6.7.
"""

from __future__ import annotations


from repro.alphabets import Packet
from repro.channels import (
    PermissiveChannel,
    PermissiveFifoChannel,
    random_reordering,
    send_pkt,
)

N_PACKETS = 200


def loaded_state(channel, count=N_PACKETS):
    state = channel.initial_state()
    for i in range(1, count + 1):
        state = channel.step(
            state, send_pkt("t", "r", Packet(("H", i % 7), (), uid=i))
        )
    return state


def test_channel_step_throughput(benchmark):
    channel = PermissiveChannel("t", "r")

    def pump():
        state = loaded_state(channel)
        for _ in range(N_PACKETS):
            actions = list(channel.enabled_local_actions(state))
            state = channel.step(state, actions[0])
        return state

    state = benchmark(pump)
    assert state.counter2 == N_PACKETS


def test_make_clean(benchmark):
    channel = PermissiveChannel("t", "r")
    state = loaded_state(channel)

    cleaned = benchmark(lambda: channel.make_clean(state))
    assert cleaned.is_clean()
    assert cleaned.waiting_sequence() == ()


def test_with_waiting_reversal(benchmark):
    """Lemma 6.7: schedule all in-transit packets in reverse order."""
    channel = PermissiveChannel("t", "r")
    state = loaded_state(channel)
    indices = list(range(N_PACKETS, 0, -1))

    surgered = benchmark(lambda: channel.with_waiting(state, indices))
    waiting = surgered.waiting_sequence()
    assert [p.uid for p in waiting] == indices


def test_with_waiting_fifo_subsequence(benchmark):
    """Lemma 6.6 on C-hat: keep every third packet, monotone."""
    channel = PermissiveFifoChannel("t", "r")
    state = loaded_state(channel)
    indices = list(range(1, N_PACKETS + 1, 3))

    surgered = benchmark(lambda: channel.with_waiting(state, indices))
    assert surgered.delivery.is_monotone()
    assert len(surgered.waiting_sequence()) == len(indices)


def test_delete_surgery_chain(benchmark):
    """Repeated ``del`` applications (the Lemma 6.6 mechanism)."""
    base = random_reordering(3, 0.0, 8, 256)

    def chain():
        ds = base
        for _ in range(64):
            ds = ds.delete_slot(1)
        return ds

    result = benchmark(chain)
    # 64 leading slots removed; the set is still total and injective.
    for j in range(1, 64):
        assert result.slot_of(result.source_of(j)) == j


def test_delivery_set_lookup(benchmark):
    ds = random_reordering(9, 0.2, 16, 2048)

    def lookups():
        return sum(ds.source_of(j) for j in range(1, 1024))

    total = benchmark(lookups)
    assert total > 0
