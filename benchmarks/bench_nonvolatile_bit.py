"""E5 -- one non-volatile incarnation suffices (Baratz-Segall boundary).

The experiment that brackets Theorem 7.5 from above: the session
protocol with a non-volatile incarnation number keeps (DL4)/(DL5)
across arbitrary crash storms and resynchronizes afterwards, while the
identical protocol with volatile incarnations is defeated by the crash
engine.  Expected shape: zero safety violations for the non-volatile
variant across all storms; cost grows with the crash count.
"""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.datalink import dl4, dl5
from repro.impossibility import refute_crash_tolerance
from repro.protocols import baratz_segall_protocol
from repro.sim import crash_storm, delivery_stats, fifo_system, run_scenario


@pytest.mark.parametrize("crashes", [1, 3, 6, 10])
def test_crash_storm_safety(benchmark, crashes):
    def storm():
        system = fifo_system(baratz_segall_protocol(nonvolatile=True))
        script = crash_storm(system, crashes=crashes, seed=crashes)
        return script, run_scenario(system, script.actions, seed=crashes)

    script, result = benchmark(storm)
    assert result.quiescent
    assert dl4(result.behavior, "t", "r").holds
    assert dl5(result.behavior, "t", "r").holds
    stats = delivery_stats(result.fragment)
    benchmark.extra_info["sent"] = len(script.messages)
    benchmark.extra_info["delivered"] = stats.delivered
    benchmark.extra_info["steps"] = result.steps


def test_safety_sweep_many_seeds(benchmark):
    """Headline: 0 safety violations over 10 seeds x 5 crashes."""

    def sweep():
        violations = 0
        for seed in range(10):
            system = fifo_system(baratz_segall_protocol(nonvolatile=True))
            script = crash_storm(system, crashes=5, seed=seed)
            result = run_scenario(system, script.actions, seed=seed)
            if not (
                dl4(result.behavior, "t", "r").holds
                and dl5(result.behavior, "t", "r").holds
            ):
                violations += 1
        return violations

    assert benchmark(sweep) == 0


def test_post_storm_liveness(benchmark):
    """Messages sent after the storm settles are always delivered."""

    def run():
        system = fifo_system(baratz_segall_protocol(nonvolatile=True))
        factory = MessageFactory()
        warmup = [
            system.wake_t(),
            system.wake_r(),
            system.send(factory.fresh()),
            system.crash_t(),
            system.wake_t(),
            system.crash_r(),
            system.wake_r(),
        ]
        state = system.run_fair(
            system.initial_state(), inputs=warmup
        ).final_state
        messages = factory.fresh_many(5)
        fragment = system.run_fair(
            state, inputs=[system.send(m) for m in messages]
        )
        delivered = {
            a.payload for a in fragment.actions if a.name == "receive_msg"
        }
        return set(messages) <= delivered

    assert benchmark(run)


def test_volatile_variant_defeated(benchmark):
    """The same protocol minus non-volatile memory falls to the engine."""

    certificate = benchmark(
        lambda: refute_crash_tolerance(
            baratz_segall_protocol(nonvolatile=False)
        )
    )
    assert certificate.validate()
    benchmark.extra_info["kind"] = certificate.kind
    benchmark.extra_info["pump_levels"] = certificate.stats["pump_levels"]
