#!/usr/bin/env python3
"""Regenerate every experiment table recorded in EXPERIMENTS.md.

Thin wrapper over :mod:`repro.analysis.report` (also available as
``python -m repro experiments``).  The per-experiment pytest-benchmark
files time the same code; this script prints the *result tables* — who
wins, by how much.

Run:  python benchmarks/run_experiments.py [E1 E2 ...]
"""

from __future__ import annotations

import sys

from repro.analysis import run_all, to_text


def main() -> None:
    only = sys.argv[1:] or None
    print(to_text(run_all(only=only)))


if __name__ == "__main__":
    main()
