#!/usr/bin/env python3
"""Regenerate every experiment table recorded in EXPERIMENTS.md.

Thin wrapper over :mod:`repro.analysis.report` (also available as
``python -m repro experiments``).  The per-experiment pytest-benchmark
files time the same code; this script prints the *result tables* — who
wins, by how much.

Run:  python benchmarks/run_experiments.py [E1 E2 ...]

``--bench-explore[=PATH]`` additionally benchmarks the exploration
engine against the reference BFS (states/sec per protocol) and writes
the report to ``bench/BENCH_explore.json`` (or PATH).
``--bench-trace[=PATH]`` runs one benchmark exploration under full
tracing and writes its JSONL event stream (plus run manifest) to
``bench/BENCH_explore_trace.jsonl`` (or PATH) — CI uploads this as an
artifact.  ``--bench-fuzz[=PATH]`` benchmarks fuzz-campaign throughput
through the worker pool against serial campaigns (runs/sec per case,
with a built-in serial-vs-pooled determinism cross-check) and writes
``bench/BENCH_fuzz.json`` (or PATH).  ``--bench-load[=PATH]``
benchmarks multi-session load generation the same way (sessions/sec
per case, serial vs. pooled, with the normalized-report identity
cross-check) and writes ``bench/BENCH_load.json`` (or PATH).  With no
experiment names given alongside any flag, only the benchmarks run.
"""

from __future__ import annotations

import sys

from repro.analysis import run_all, to_text
from repro.conformance.bench import (
    DEFAULT_FUZZ_PATH,
    write_fuzz_bench_json,
)
from repro.ioa.engine.bench import (
    DEFAULT_PATH,
    TRACE_PATH,
    write_bench_json,
    write_bench_trace,
)
from repro.sim.bench import (
    DEFAULT_LOAD_PATH,
    write_load_bench_json,
)


def main() -> None:
    argv = list(sys.argv[1:])
    bench_path = None
    trace_path = None
    fuzz_path = None
    load_path = None
    for arg in list(argv):
        if arg == "--bench-explore":
            bench_path = DEFAULT_PATH
            argv.remove(arg)
        elif arg.startswith("--bench-explore="):
            bench_path = arg.split("=", 1)[1] or DEFAULT_PATH
            argv.remove(arg)
        elif arg == "--bench-trace":
            trace_path = TRACE_PATH
            argv.remove(arg)
        elif arg.startswith("--bench-trace="):
            trace_path = arg.split("=", 1)[1] or TRACE_PATH
            argv.remove(arg)
        elif arg == "--bench-fuzz":
            fuzz_path = DEFAULT_FUZZ_PATH
            argv.remove(arg)
        elif arg.startswith("--bench-fuzz="):
            fuzz_path = arg.split("=", 1)[1] or DEFAULT_FUZZ_PATH
            argv.remove(arg)
        elif arg == "--bench-load":
            load_path = DEFAULT_LOAD_PATH
            argv.remove(arg)
        elif arg.startswith("--bench-load="):
            load_path = arg.split("=", 1)[1] or DEFAULT_LOAD_PATH
            argv.remove(arg)
    if (
        bench_path is None
        and trace_path is None
        and fuzz_path is None
        and load_path is None
    ) or argv:
        only = argv or None
        print(to_text(run_all(only=only)))
    if trace_path is not None:
        summary = write_bench_trace(trace_path)
        print(
            f"wrote {summary['path']}: {summary['protocol']} "
            f"({summary['states']} states, "
            f"{len(summary['counters'])} counter series)"
        )
    if bench_path is not None:
        report = write_bench_json(bench_path)
        protocols = report["protocols"]
        print(f"wrote {bench_path}")
        for key, row in protocols.items():
            print(
                f"  {key:18s} {row['states']:7d} states  "
                f"engine {row['engine_states_per_sec']:10.0f}/s  "
                f"reference {row['reference_states_per_sec']:9.0f}/s  "
                f"speedup {row['speedup']:.2f}x"
            )
        print(f"  median speedup: {report['median_speedup']:.2f}x")
    if fuzz_path is not None:
        report = write_fuzz_bench_json(fuzz_path)
        print(
            f"wrote {fuzz_path} (workers={report['workers']}, "
            f"effective_cpus={report['effective_cpus']}"
            + (", OVERSUBSCRIBED" if report["oversubscribed"] else "")
            + ")"
        )
        for key, row in report["cases"].items():
            print(
                f"  {key:24s} {row['runs']:4d} runs  "
                f"serial {row['serial_runs_per_sec']:7.1f}/s  "
                f"pool[{row['pool_mode']}] "
                f"{row['pool_runs_per_sec']:7.1f}/s  "
                f"speedup {row['speedup']:.2f}x"
            )
        print(f"  median speedup: {report['median_speedup']:.2f}x")
    if load_path is not None:
        report = write_load_bench_json(load_path)
        print(
            f"wrote {load_path} (workers={report['workers']}, "
            f"effective_cpus={report['effective_cpus']}"
            + (", OVERSUBSCRIBED" if report["oversubscribed"] else "")
            + ")"
        )
        for key, row in report["cases"].items():
            print(
                f"  {key:24s} {row['sessions']:4d} sessions  "
                f"serial {row['serial_sessions_per_sec']:7.1f}/s  "
                f"pool[{row['pool_mode']}] "
                f"{row['pool_sessions_per_sec']:7.1f}/s  "
                f"speedup {row['speedup']:.2f}x"
            )
        print(f"  median speedup: {report['median_speedup']:.2f}x")


if __name__ == "__main__":
    main()
