"""E2 -- Theorem 8.5: the bounded-header construction.

Benchmarks the pumping construction across the bounded-header protocol
family.  Expected shape: every victim falls with a duplicate-delivery
certificate; pumping rounds grow (roughly linearly) with the header
count, staying below the Lemma 8.4 bound ``k * |classes|``; the
unbounded-header control (Stenning) is rejected.
"""

from __future__ import annotations

import pytest

from repro.impossibility import EngineError, refute_bounded_headers
from repro.protocols import (
    alternating_bit_protocol,
    modulo_stenning_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

VICTIMS = {
    "abp": alternating_bit_protocol,
    "sliding-window-2": lambda: sliding_window_protocol(2),
    "sliding-window-4": lambda: sliding_window_protocol(4),
    "mod-stenning-02": lambda: modulo_stenning_protocol(2),
    "mod-stenning-04": lambda: modulo_stenning_protocol(4),
    "mod-stenning-08": lambda: modulo_stenning_protocol(8),
    "mod-stenning-16": lambda: modulo_stenning_protocol(16),
}


@pytest.mark.parametrize("name", sorted(VICTIMS))
def test_header_engine(benchmark, name):
    factory = VICTIMS[name]

    certificate = benchmark(lambda: refute_bounded_headers(factory()))

    assert certificate.validate(), name
    protocol = factory()
    header_count = len(protocol.header_space())
    rounds = certificate.stats["pump_rounds"]
    k = certificate.stats["k"]
    # Lemma 8.4: the T-chain has length at most k * |classes|.
    assert rounds <= k * 2 * header_count
    benchmark.extra_info["kind"] = certificate.kind
    benchmark.extra_info["headers"] = header_count
    benchmark.extra_info["k"] = k
    benchmark.extra_info["pump_rounds"] = rounds
    benchmark.extra_info["transit_packets"] = certificate.stats[
        "transit_packets"
    ]


def test_rounds_grow_with_headers(benchmark):
    """The crossover claim: effort scales with the header space."""

    def sweep():
        return {
            modulus: refute_bounded_headers(
                modulo_stenning_protocol(modulus)
            ).stats["pump_rounds"]
            for modulus in (2, 4, 8, 16)
        }

    rounds = benchmark(sweep)
    assert rounds[2] < rounds[4] < rounds[8] < rounds[16]


def test_header_engine_rejects_stenning(benchmark):
    def attempt():
        try:
            refute_bounded_headers(stenning_protocol())
        except EngineError:
            return True
        return False

    assert benchmark(attempt)
