"""E7 -- framework cost: composition stepping and trace checking.

Measures the I/O-automaton executor on the full four-component
composition and the throughput of the specification checkers, the two
fixed costs every experiment pays.
"""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.datalink import dl_module, wdl_module
from repro.protocols import alternating_bit_protocol, sliding_window_protocol
from repro.sim import fifo_system

MESSAGES = 25


def full_run(protocol):
    system = fifo_system(protocol)
    factory = MessageFactory()
    messages = factory.fresh_many(MESSAGES)
    fragment = system.run_fair(
        system.initial_state(),
        inputs=[system.wake_t(), system.wake_r()]
        + [system.send(m) for m in messages],
        max_steps=500_000,
    )
    return system, fragment


@pytest.mark.parametrize(
    "name,factory",
    [
        ("abp", alternating_bit_protocol),
        ("sliding-window-4", lambda: sliding_window_protocol(4)),
    ],
)
def test_composed_system_throughput(benchmark, name, factory):
    protocol = factory()

    system, fragment = benchmark(lambda: full_run(protocol))
    assert len(fragment) >= 3 * MESSAGES
    benchmark.extra_info["steps"] = len(fragment)


def test_dl_checker_throughput(benchmark):
    system, fragment = full_run(sliding_window_protocol(4))
    behavior = system.behavior(fragment)
    module = dl_module("t", "r")

    verdict = benchmark(lambda: module.check(behavior))
    assert verdict.in_module


def test_wdl_checker_throughput(benchmark):
    system, fragment = full_run(alternating_bit_protocol())
    behavior = system.behavior(fragment)
    module = wdl_module("t", "r")

    verdict = benchmark(lambda: module.check(behavior))
    assert verdict.in_module


def test_full_trace_audit_throughput(benchmark):
    from repro.analysis import check_datalink_trace

    system, fragment = full_run(alternating_bit_protocol())
    behavior = system.behavior(fragment)

    report = benchmark(lambda: check_datalink_trace(behavior))
    assert report.ok


def test_explorer_throughput(benchmark):
    """States per second of the exhaustive explorer on the ABP system."""
    from repro.analysis import verify_delivery_order

    result = benchmark(
        lambda: verify_delivery_order(
            alternating_bit_protocol(), messages=2, capacity=3
        )
    )
    assert result.ok and result.exhaustive
    benchmark.extra_info["states"] = result.states_explored


def test_refinement_throughput(benchmark):
    from repro.analysis import verify_abp_refinement

    result = benchmark(lambda: verify_abp_refinement(messages=3, capacity=2))
    assert result.holds
    benchmark.extra_info["states"] = result.states_checked
