"""E1 -- Theorem 7.5: the crash-impossibility construction.

For every crashing, message-independent protocol in the repository the
engine must construct a validated counterexample; the benchmark times
the full construction (reference execution + pumping + fair extension +
validation) and records its size.  Expected shape: every victim falls;
the non-volatile control is rejected; construction cost grows with the
length of the reference execution's alternation chain (Baratz-Segall's
handshake makes its chain the deepest).
"""

from __future__ import annotations

import pytest

from repro.impossibility import EngineError, refute_crash_tolerance
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    eager_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

VICTIMS = {
    "abp": alternating_bit_protocol,
    "sliding-window-1": lambda: sliding_window_protocol(1),
    "sliding-window-2": lambda: sliding_window_protocol(2),
    "sliding-window-4": lambda: sliding_window_protocol(4),
    "sliding-window-8": lambda: sliding_window_protocol(8),
    "stenning": stenning_protocol,
    "baratz-segall-volatile": lambda: baratz_segall_protocol(
        nonvolatile=False
    ),
    "eager": eager_protocol,
}


@pytest.mark.parametrize("name", sorted(VICTIMS))
def test_crash_engine(benchmark, name):
    factory = VICTIMS[name]

    certificate = benchmark(lambda: refute_crash_tolerance(factory()))

    assert certificate.validate(), name
    benchmark.extra_info["kind"] = certificate.kind
    benchmark.extra_info["violated"] = ",".join(certificate.violated)
    benchmark.extra_info["pump_levels"] = certificate.stats["pump_levels"]
    benchmark.extra_info["replayed_steps"] = certificate.stats[
        "replayed_steps"
    ]
    benchmark.extra_info["behavior_events"] = len(certificate.behavior)


def test_crash_engine_rejects_nonvolatile(benchmark):
    """The boundary control: non-volatile memory escapes the theorem."""

    def attempt():
        try:
            refute_crash_tolerance(baratz_segall_protocol(nonvolatile=True))
        except EngineError:
            return True
        return False

    rejected = benchmark(attempt)
    assert rejected
