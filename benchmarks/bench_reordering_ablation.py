"""E8 -- ablation: bounded reordering vs. header modulus.

Theorem 8.5's hypothesis is *arbitrary* reordering; footnote 1 of the
paper notes that bounding packet lifetime restores bounded headers.
This ablation sweeps the channel's reordering displacement against the
modulo-Stenning header modulus and contrasts randomized adversaries
with the constructive one:

* N=2 breaks under almost any reordering; N=4 occasionally; N=8 never
  falls to the randomized adversaries used here;
* the Lemma 8.3/8.4 pumping construction defeats *every* bounded
  modulus deterministically -- constructive adversaries find what
  random testing misses.
"""

from __future__ import annotations

import pytest

from repro.analysis import reordering_tolerance_grid
from repro.impossibility import refute_bounded_headers
from repro.protocols import modulo_stenning_protocol, stenning_protocol


def family(modulus):
    if modulus is None:
        return stenning_protocol()
    return modulo_stenning_protocol(modulus)


def test_ablation_grid(benchmark):
    grid = benchmark.pedantic(
        lambda: reordering_tolerance_grid(
            family,
            moduli=[2, 4, 8, None],
            displacements=[1, 2, 4, 8],
            seeds=range(6),
            messages=10,
        ),
        rounds=1,
        iterations=1,
    )
    # Shape assertions: safety at FIFO; fragility grows as the modulus
    # shrinks; unbounded headers never fail.
    for modulus in (2, 4, 8, None):
        assert grid.cell(modulus, 1).violations == 0
    assert grid.cell(2, 4).violations > 0
    assert grid.cell(2, 4).violations >= grid.cell(4, 4).violations
    assert grid.cell(8, 8).violations == 0
    for displacement in (1, 2, 4, 8):
        assert grid.cell(None, displacement).violations == 0
    benchmark.extra_info["grid"] = grid.render()


@pytest.mark.parametrize("modulus", [2, 4, 8])
def test_constructive_adversary_always_wins(benchmark, modulus):
    certificate = benchmark(
        lambda: refute_bounded_headers(modulo_stenning_protocol(modulus))
    )
    assert certificate.validate()
    benchmark.extra_info["pump_rounds"] = certificate.stats["pump_rounds"]
